//! Criterion-result JSON tooling: `collect` flattens the most recent
//! criterion run into a single JSON map, `compare` gates a fresh run
//! against a committed baseline (`BENCH_baseline.json`).
//!
//! ```text
//! bench_json collect [--criterion-dir DIR] [--out FILE]
//! bench_json compare <baseline.json> <current.json> [--tolerance 0.25]
//! ```
//!
//! The collected schema (documented in DESIGN.md §13) is deliberately
//! flat so diffs stay readable:
//!
//! ```json
//! { "schema": "kinemyo-bench-json/1",
//!   "benches": { "window_step/incremental/64": 1234.5, ... } }
//! ```
//!
//! Values are mean nanoseconds per iteration, read from each bench's
//! `new/estimates.json`; ids come from the sibling `benchmark.json`, so
//! the tool tracks criterion's on-disk layout rather than its CLI.
//! `compare` exits non-zero if any bench shared by both files regressed
//! by more than the tolerance; benches present on only one side are
//! reported but never fail the gate, so a quick smoke may run a subset
//! of the suite.
//!
//! The files involved are tiny and flat, so this binary carries its own
//! ~hundred-line JSON reader instead of depending on a parser crate:
//! the perf gate must keep working in minimal build environments.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const SCHEMA: &str = "kinemyo-bench-json/1";

/// A parsed JSON value; only the shapes the criterion files use.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the byte stream. Strings support the
/// standard escapes minus `\uXXXX` (bench ids never need it).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        other => return Err(format!("unsupported escape {other:?}")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = &self.bytes[self.pos..];
                    let step = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..step]).map_err(|e| e.to_string())?);
                    self.pos += step;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }
}

fn criterion_dir_default() -> PathBuf {
    if let Ok(home) = std::env::var("CRITERION_HOME") {
        return PathBuf::from(home);
    }
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("criterion")
}

/// Walks `dir` for `new/{benchmark,estimates}.json` pairs and returns
/// `full_id -> mean ns`.
fn collect_means(dir: &Path, out: &mut BTreeMap<String, f64>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_dir() {
            continue;
        }
        if path.file_name().and_then(|n| n.to_str()) == Some("new") {
            let (Ok(bench_raw), Ok(est_raw)) = (
                fs::read_to_string(path.join("benchmark.json")),
                fs::read_to_string(path.join("estimates.json")),
            ) else {
                continue;
            };
            let (Ok(bench), Ok(est)) = (Parser::parse(&bench_raw), Parser::parse(&est_raw)) else {
                continue;
            };
            let id = bench.get("full_id").and_then(Json::as_str);
            let mean = est
                .get("mean")
                .and_then(|m| m.get("point_estimate"))
                .and_then(Json::as_f64);
            if let (Some(id), Some(mean)) = (id, mean) {
                out.insert(id.to_string(), mean);
            }
        } else {
            collect_means(&path, out)?;
        }
    }
    Ok(())
}

fn load_benches(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let raw = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Parser::parse(&raw).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!(
            "{path}: missing or unknown \"schema\" (want {SCHEMA})"
        ));
    }
    let benches = match doc.get("benches") {
        Some(Json::Obj(m)) => m,
        _ => return Err(format!("{path}: missing \"benches\" object")),
    };
    benches
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|ns| (k.clone(), ns))
                .ok_or_else(|| format!("{path}: bench {k:?} is not a number"))
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

fn render(benches: &BTreeMap<String, f64>) -> String {
    let mut text = String::from("{\n");
    text.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    text.push_str("  \"benches\": {\n");
    let last = benches.len().saturating_sub(1);
    for (i, (id, ns)) in benches.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        text.push_str(&format!("    \"{}\": {ns}{comma}\n", escape(id)));
    }
    text.push_str("  }\n}\n");
    text
}

fn cmd_collect(args: &[String]) -> Result<(), String> {
    let mut dir = criterion_dir_default();
    let mut out_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--criterion-dir" => {
                dir = PathBuf::from(it.next().ok_or("--criterion-dir needs a value")?)
            }
            "--out" => out_file = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown collect flag {other:?}")),
        }
    }
    let mut benches = BTreeMap::new();
    collect_means(&dir, &mut benches).map_err(|e| format!("{}: {e}", dir.display()))?;
    if benches.is_empty() {
        return Err(format!(
            "no criterion results under {} — run `cargo bench` first",
            dir.display()
        ));
    }
    let text = render(&benches);
    match out_file {
        Some(path) => fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{text}"),
    }
    eprintln!("collected {} benches", benches.len());
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<bool, String> {
    let mut tolerance = 0.25f64;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("bad tolerance: {e}"))?
            }
            _ => files.push(arg),
        }
    }
    let [baseline_path, current_path] = files[..] else {
        return Err("compare needs exactly two files: <baseline.json> <current.json>".into());
    };
    let baseline = load_benches(baseline_path)?;
    let current = load_benches(current_path)?;

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (id, &base_ns) in &baseline {
        let Some(&cur_ns) = current.get(id) else {
            eprintln!("note: {id} missing from current run (skipped)");
            continue;
        };
        compared += 1;
        let delta = cur_ns / base_ns - 1.0;
        println!(
            "{id:<50} {base_ns:>12.1} -> {cur_ns:>12.1} ns  ({:+.1}%)",
            delta * 100.0
        );
        if delta > tolerance {
            regressions.push((id.clone(), delta));
        }
    }
    for id in current.keys() {
        if !baseline.contains_key(id) {
            eprintln!("note: {id} is new (not in baseline)");
        }
    }
    if regressions.is_empty() {
        println!(
            "perf OK: {compared} benches within {:.0}% of baseline",
            tolerance * 100.0
        );
        Ok(true)
    } else {
        for (id, delta) in &regressions {
            eprintln!(
                "REGRESSION: {id} is {:.1}% slower than baseline (tolerance {:.0}%)",
                delta * 100.0,
                tolerance * 100.0
            );
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("collect") => cmd_collect(&args[1..]).map(|()| true),
        Some("compare") => cmd_compare(&args[1..]),
        _ => Err(
            "usage: bench_json collect [--criterion-dir DIR] [--out FILE] | \
                  bench_json compare <baseline.json> <current.json> [--tolerance T]"
                .into(),
        ),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_json: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_criterion_estimates_shape() {
        let est = Parser::parse(
            "{\"mean\":{\"point_estimate\":1234.5},\"median\":{\"point_estimate\":1200}}",
        )
        .unwrap();
        let mean = est
            .get("mean")
            .and_then(|m| m.get("point_estimate"))
            .and_then(Json::as_f64);
        assert_eq!(mean, Some(1234.5));
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = Parser::parse(
            "{\"full_id\": \"group\\\\x/id\", \"arr\": [1, -2.5e3, true, null, \"s\"]}",
        )
        .unwrap();
        assert_eq!(v.get("full_id").and_then(Json::as_str), Some("group\\x/id"));
        assert_eq!(
            v.get("arr"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2500.0),
                Json::Bool(true),
                Json::Null,
                Json::Str("s".into()),
            ]))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Parser::parse("{\"a\": }").is_err());
        assert!(Parser::parse("{\"a\": 1} trailing").is_err());
        assert!(Parser::parse("{\"a\" 1}").is_err());
        assert!(Parser::parse("\"unterminated").is_err());
    }

    #[test]
    fn render_round_trips_through_parse() {
        let mut benches = BTreeMap::new();
        benches.insert("group/id/64".to_string(), 1234.5);
        benches.insert("other".to_string(), 7.0);
        let text = render(&benches);
        let doc = Parser::parse(&text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let parsed = match doc.get("benches") {
            Some(Json::Obj(m)) => m.clone(),
            other => panic!("bad benches: {other:?}"),
        };
        assert_eq!(parsed.get("group/id/64"), Some(&Json::Num(1234.5)));
        assert_eq!(parsed.get("other"), Some(&Json::Num(7.0)));
    }
}
