//! **Ablation: translation-only vs heading-normalized local transform.**
//! The paper's Sec. 3.2 transform only shifts the origin to the pelvis.
//! When trials are performed facing different directions, that transform
//! cannot align them; this binary sweeps heading spread and compares the
//! paper's transform against the heading-normalizing extension.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_heading`.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::stratified_split;
use kinemyo_bench::custom::{evaluate_variant, TransformKind, VariantConfig};
use kinemyo_bench::experiment_seed;

fn main() {
    println!("Ablation — local transform vs trial heading spread (hand)");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    for spread_deg in [0.0f64, 10.0, 20.0, 40.0] {
        let mut spec = DatasetSpec::hand_default().with_seed(experiment_seed());
        spec.facing_spread_rad = spread_deg.to_radians();
        let ds = Dataset::generate(spec).expect("dataset generation succeeds");
        let (train, query) = stratified_split(&ds.records, 2);
        for (name, kind) in [
            ("translation-only", TransformKind::Translation),
            ("heading-normalized", TransformKind::HeadingNormalized),
        ] {
            let cfg = VariantConfig {
                transform: kind,
                seed: experiment_seed(),
                ..VariantConfig::default()
            };
            let (mis, knn_pct) = evaluate_variant(&train, &query, Limb::RightHand, &cfg);
            println!(
                "spread ±{spread_deg:>4.0}°  {name:<20} misclass {mis:>6.2}%   kNN-correct {knn_pct:>6.2}%"
            );
            rows.push(serde_json::json!({
                "spread_deg": spread_deg, "transform": name,
                "misclassification_pct": mis, "knn_correct_pct": knn_pct,
            }));
        }
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_heading",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
