//! Regenerates **Figure 4**: the final `2c`-length feature vectors
//! (min/max of highest membership per cluster, c = 6) for the same two
//! sets of similar motions as Figure 3.
//!
//! The figure's message: the two "raise arm" vectors nearly coincide, the
//! two "throw ball" vectors nearly coincide, and the classes differ.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin fig4_feature_vectors`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionClass, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_bench::experiment_seed;
use kinemyo_linalg::vector::euclidean;

fn main() {
    println!("Figure 4 — final min/max membership feature vectors, c = 6");
    println!("seed = {}", experiment_seed());
    let ds = Dataset::generate(
        DatasetSpec::hand_default()
            .with_size(1, 4)
            .with_seed(experiment_seed()),
    )
    .expect("dataset generation succeeds");
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default()
        .with_clusters(6)
        .with_window_ms(100.0)
        .with_seed(experiment_seed());
    let model = MotionClassifier::train(&refs, ds.spec.limb, &config).expect("training succeeds");

    let mut vectors: Vec<(String, Vec<f64>)> = Vec::new();
    for (class, label) in [
        (MotionClass::RaiseArm, "Raise Arm     - Right Hand"),
        (MotionClass::ThrowBall, "Throwing Ball - Right Hand"),
    ] {
        for (i, r) in ds
            .records
            .iter()
            .filter(|r| r.class == class)
            .take(2)
            .enumerate()
        {
            let fv = model
                .query_feature_vector(r)
                .expect("feature vector computation succeeds");
            vectors.push((format!("{label} M{}", i + 1), fv.into_vec()));
        }
    }

    // Header mirrors the paper's x-axis: "min max" per cluster.
    print!("{:>30}", "");
    for k in 0..6 {
        print!("  [min   max] c{}", k + 1);
    }
    println!();
    for (label, v) in &vectors {
        print!("{label:>30}");
        for pair in v.chunks(2) {
            print!("  [{:.2}  {:.2}]   ", pair[0], pair[1]);
        }
        println!();
    }

    let d = |a: usize, b: usize| euclidean(&vectors[a].1, &vectors[b].1);
    let same = (d(0, 1) + d(2, 3)) / 2.0;
    let cross = (d(0, 2) + d(0, 3) + d(1, 2) + d(1, 3)) / 4.0;
    println!(
        "\nmean distance: same-class {same:.3}, cross-class {cross:.3} (ratio {:.2}x)",
        cross / same.max(1e-9)
    );
    let json = serde_json::json!({
        "figure": "fig4",
        "seed": experiment_seed(),
        "vectors": vectors.iter().map(|(l, v)| serde_json::json!({"motion": l, "vector": v})).collect::<Vec<_>>(),
        "same_class_distance": same,
        "cross_class_distance": cross,
    });
    println!("JSON:{json}");
}
