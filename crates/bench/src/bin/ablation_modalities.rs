//! **Ablation: integration vs single modality.** The paper's thesis is
//! that analyzing motion capture *and* EMG together beats either alone.
//! This binary evaluates EMG-only, mocap-only and combined feature spaces
//! on three noise regimes: the standard test bed, a degraded-optics bed
//! (heavy marker jitter/sway), and a degraded-EMG bed (strong electrode
//! gain drift). Integration should be the most robust overall.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_modalities`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{evaluate, stratified_split, Modality, PipelineConfig};
use kinemyo_bench::experiment_seed;

fn eval_all(label: &str, ds: &Dataset) -> Vec<(String, f64, f64)> {
    let (train, query) = stratified_split(&ds.records, 2);
    let train: Vec<&MotionRecord> = train;
    let query: Vec<&MotionRecord> = query;
    let mut rows = Vec::new();
    for (name, modality) in [
        ("emg-only", Modality::EmgOnly),
        ("mocap-only", Modality::MocapOnly),
        ("combined", Modality::Combined),
    ] {
        let cfg = PipelineConfig::default()
            .with_clusters(15)
            .with_seed(experiment_seed())
            .with_modality(modality);
        let out = evaluate(&train, &query, ds.spec.limb, &cfg).expect("evaluation succeeds");
        println!(
            "{label:<18} {name:<12} misclass {:>6.2}%   kNN-correct {:>6.2}%",
            out.misclassification_pct, out.knn_correct_pct
        );
        rows.push((
            format!("{label}/{name}"),
            out.misclassification_pct,
            out.knn_correct_pct,
        ));
    }
    rows
}

fn main() {
    println!("Ablation — modality integration (hand, c=15, w=100ms)");
    println!("seed = {}\n", experiment_seed());
    let mut all = Vec::new();

    let standard = DatasetSpec::hand_default().with_seed(experiment_seed());
    all.extend(eval_all(
        "standard",
        &Dataset::generate(standard.clone()).unwrap(),
    ));

    let mut bad_optics = standard.clone();
    bad_optics.mocap_noise.jitter_mm = 12.0;
    bad_optics.mocap_noise.sway_mm = 60.0;
    all.extend(eval_all(
        "degraded-mocap",
        &Dataset::generate(bad_optics).unwrap(),
    ));

    let mut bad_emg = standard;
    bad_emg.emg.gain_cv = 0.6;
    bad_emg.emg.thermal_rel = 0.08;
    bad_emg.emg.powerline_rel = 0.10;
    all.extend(eval_all(
        "degraded-emg",
        &Dataset::generate(bad_emg).unwrap(),
    ));

    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_modalities",
            "seed": experiment_seed(),
            "rows": all.iter().map(|(l, m, k)| serde_json::json!({
                "config": l, "misclassification_pct": m, "knn_correct_pct": k
            })).collect::<Vec<_>>(),
        })
    );
}
