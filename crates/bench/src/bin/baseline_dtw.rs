//! **Baseline: raw-signal DTW 1-NN vs the paper's pipeline.** The related
//! work the paper positions against (Keogh et al., ref \[8\]) matches raw
//! time series directly. This binary compares classification accuracy and
//! per-query cost of the paper's feature pipeline against multivariate
//! DTW nearest-neighbour on the synchronized raw streams (pelvis-local
//! mocap ‖ EMG, z-scored, temporally decimated for tractability).
//!
//! Run with `cargo run --release -p kinemyo-bench --bin baseline_dtw`.

use kinemyo::biosim::{Limb, MotionClass, MotionRecord};
use kinemyo::{pelvis_matrix, stratified_split, PipelineConfig};
use kinemyo_bench::{evaluation_dataset, experiment_seed};
use kinemyo_features::to_pelvis_local;
use kinemyo_linalg::stats::ZScore;
use kinemyo_linalg::Matrix;
use kinemyo_modb::DtwClassifier;
use std::time::Instant;

/// Decimated, standardized raw representation of a record for DTW.
fn dtw_series(r: &MotionRecord, decimate: usize) -> Matrix {
    let pelvis = pelvis_matrix(&r.pelvis);
    let local = to_pelvis_local(&r.mocap, &pelvis).expect("record shapes consistent");
    let combined = local.hstack(&r.emg).expect("frame counts match");
    let rows: Vec<Vec<f64>> = (0..combined.rows())
        .step_by(decimate)
        .map(|f| combined.row(f).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("consistent row lengths")
}

fn main() {
    println!("Baseline — DTW 1-NN on raw signals vs the feature pipeline (hand)");
    println!("seed = {}\n", experiment_seed());
    let ds = evaluation_dataset(Limb::RightHand);
    let (train, queries) = stratified_split(&ds.records, 2);

    // --- The paper's pipeline -------------------------------------------
    let cfg = PipelineConfig::default()
        .with_clusters(15)
        .with_seed(experiment_seed());
    let t0 = Instant::now();
    let model =
        kinemyo::MotionClassifier::train(&train, Limb::RightHand, &cfg).expect("training succeeds");
    let pipeline_train = t0.elapsed();
    let t0 = Instant::now();
    let out = kinemyo::eval::evaluate_with_model(&model, &queries).expect("evaluation succeeds");
    let pipeline_query_total = t0.elapsed();
    println!(
        "pipeline   misclass {:>6.2}%   kNN-correct {:>6.2}%   train {:>7.1} ms, {} queries {:>7.1} ms ({:.2} ms/query)",
        out.misclassification_pct,
        out.knn_correct_pct,
        pipeline_train.as_secs_f64() * 1e3,
        out.queries,
        pipeline_query_total.as_secs_f64() * 1e3,
        pipeline_query_total.as_secs_f64() * 1e3 / out.queries as f64
    );

    // --- DTW baseline ----------------------------------------------------
    let decimate = 8; // 120 Hz → 15 Hz frames for tractable O(n·m) DP
                      // Standardize channels using the training data statistics.
    let mut stacked: Option<Matrix> = None;
    for r in &train {
        let s = dtw_series(r, decimate);
        stacked = Some(match stacked {
            None => s,
            Some(acc) => acc.vstack(&s).expect("same dims"),
        });
    }
    let scaler = ZScore::fit(&stacked.expect("non-empty train")).expect("non-empty");
    let mut clf: DtwClassifier<MotionClass> = DtwClassifier::new(Some(20));
    let t0 = Instant::now();
    for r in &train {
        let s = scaler
            .transform(&dtw_series(r, decimate))
            .expect("fitted dims");
        clf.insert(r.id, r.class, s).expect("consistent dims");
    }
    let dtw_build = t0.elapsed();

    let t0 = Instant::now();
    let mut wrong = 0usize;
    for q in &queries {
        let s = scaler
            .transform(&dtw_series(q, decimate))
            .expect("fitted dims");
        let nearest = clf.knn(&s, 1).expect("non-empty classifier");
        if nearest[0].1 != q.class {
            wrong += 1;
        }
    }
    let dtw_query_total = t0.elapsed();
    let dtw_misclass = wrong as f64 / queries.len() as f64 * 100.0;
    println!(
        "dtw-1nn    misclass {:>6.2}%   (band 20, decimate {decimate}x)   build {:>6.1} ms, {} queries {:>8.1} ms ({:.1} ms/query)",
        dtw_misclass,
        dtw_build.as_secs_f64() * 1e3,
        queries.len(),
        dtw_query_total.as_secs_f64() * 1e3,
        dtw_query_total.as_secs_f64() * 1e3 / queries.len() as f64
    );
    println!(
        "\nper-query speedup of the 2c-vector pipeline over raw DTW: {:.1}x \
         (amortizing the one-off training over a large database pays off as \
         the database grows: DTW query cost is linear in records x frames^2, \
         the pipeline's is linear in records x 2c)",
        (dtw_query_total.as_secs_f64() / queries.len() as f64)
            / (pipeline_query_total.as_secs_f64() / out.queries as f64).max(1e-9)
    );
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "baseline_dtw",
            "seed": experiment_seed(),
            "pipeline_misclassification_pct": out.misclassification_pct,
            "dtw_misclassification_pct": dtw_misclass,
            "dtw_ms_per_query": dtw_query_total.as_secs_f64() * 1e3 / queries.len() as f64,
            "pipeline_ms_per_query": pipeline_query_total.as_secs_f64() * 1e3 / out.queries as f64,
            "pipeline_train_ms": pipeline_train.as_secs_f64() * 1e3,
        })
    );
}
