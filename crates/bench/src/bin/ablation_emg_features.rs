//! **Ablation: EMG feature choice.** The paper picks IAV (Eq. 1) and
//! cites zero-crossings (Hudgins et al., ref \[7\]) and the EMG histogram
//! (Zardoshti-Kermani et al., ref \[15\]) as the classic alternatives.
//! This binary swaps the EMG half of the combined feature point among the
//! three and compares classification quality, for combined and EMG-only
//! feature spaces.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_emg_features`.

use kinemyo::biosim::Limb;
use kinemyo::stratified_split;
use kinemyo::Modality;
use kinemyo_bench::custom::{evaluate_variant, VariantConfig};
use kinemyo_bench::{evaluation_dataset, experiment_seed};
use kinemyo_features::EmgFeatureSet;

fn main() {
    println!("Ablation — EMG window features: IAV vs Hudgins-TD vs histogram (hand)");
    println!("seed = {}\n", experiment_seed());
    let ds = evaluation_dataset(Limb::RightHand);
    let (train, query) = stratified_split(&ds.records, 2);
    let sets = [
        ("iav (paper)", EmgFeatureSet::Iav),
        ("hudgins-td", EmgFeatureSet::HudginsTd { deadband: 2e-5 }),
        (
            "histogram-9",
            EmgFeatureSet::Histogram {
                bins: 9,
                hi: 1.2e-3,
            },
        ),
    ];
    let mut rows = Vec::new();
    for modality in [Modality::Combined, Modality::EmgOnly] {
        for (name, set) in sets {
            let cfg = VariantConfig {
                emg_feature: set,
                modality,
                seed: experiment_seed(),
                ..VariantConfig::default()
            };
            let (mis, knn_pct) = evaluate_variant(&train, &query, Limb::RightHand, &cfg);
            println!(
                "{:<10} {name:<14} misclass {mis:>6.2}%   kNN-correct {knn_pct:>6.2}%",
                format!("{modality:?}"),
            );
            rows.push(serde_json::json!({
                "modality": format!("{modality:?}"), "emg_feature": name,
                "misclassification_pct": mis, "knn_correct_pct": knn_pct,
            }));
        }
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_emg_features",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
