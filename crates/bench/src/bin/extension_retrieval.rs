//! **Extension: content-based retrieval quality.** The paper frames
//! classification as content-based retrieval (Sec. 4): fetch the k most
//! similar motions for a query. This binary reports precision-at-k for
//! k = 1..10 (the fraction of retrieved motions sharing the query's
//! class) and the cluster-count auto-selection the core crate offers.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin extension_retrieval`.

use kinemyo::biosim::Limb;
use kinemyo::{select_cluster_count, stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_bench::{evaluation_dataset, experiment_seed};
use kinemyo_modb::knn_correct_pct;

fn main() {
    println!("Extension — retrieval precision-at-k and unsupervised c selection (hand)");
    println!("seed = {}\n", experiment_seed());
    let ds = evaluation_dataset(Limb::RightHand);
    let (train, queries) = stratified_split(&ds.records, 2);

    // Unsupervised cluster-count selection on the *training* recordings.
    let base = PipelineConfig::default().with_seed(experiment_seed());
    let selection =
        select_cluster_count(&train, &base, &[5, 10, 15, 20, 25]).expect("selection succeeds");
    println!("Xie-Beni cluster selection (lower is better):");
    for c in &selection.candidates {
        let marker = if c.clusters == selection.best {
            "  <- selected"
        } else {
            ""
        };
        println!("  c={:<3} XB={:.4}{marker}", c.clusters, c.xie_beni);
    }

    let config = base.with_clusters(selection.best);
    let model =
        MotionClassifier::train(&train, Limb::RightHand, &config).expect("training succeeds");

    println!(
        "\nprecision-at-k over {} queries (c = {}):",
        queries.len(),
        selection.best
    );
    println!("{:>4} {:>12}", "k", "P@k (%)");
    let mut rows = Vec::new();
    for k in 1..=10usize {
        let mut pcts = Vec::with_capacity(queries.len());
        for q in &queries {
            let neighbors = model.retrieve(q, k).expect("retrieval succeeds");
            let labels: Vec<_> = neighbors.iter().map(|n| n.meta.class).collect();
            pcts.push(knn_correct_pct(&q.class, &labels));
        }
        let mean = pcts.iter().sum::<f64>() / pcts.len() as f64;
        println!("{k:>4} {mean:>12.2}");
        rows.push(serde_json::json!({"k": k, "precision_pct": mean}));
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "extension_retrieval",
            "seed": experiment_seed(),
            "selected_clusters": selection.best,
            "rows": rows,
        })
    );
}
