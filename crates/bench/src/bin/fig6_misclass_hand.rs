//! Regenerates **Figure 6**: percent of trials misclassified for the
//! right hand, vs number of clusters (5–40), one series per window size
//! (50/100/150/200 ms).
//!
//! Run with `cargo run --release -p kinemyo-bench --bin fig6_misclass_hand`.

use kinemyo::biosim::Limb;
use kinemyo::sweep;
use kinemyo_bench::{
    base_config, evaluation_dataset, experiment_seed, print_sweep_json, print_sweep_table, repeats,
    sparkline, sweep_grids,
};

fn main() {
    let limb = Limb::RightHand;
    println!("Figure 6 — misclassification rate (%), right hand");
    println!("seed = {}", experiment_seed());
    let dataset = evaluation_dataset(limb);
    println!(
        "dataset: {} records ({} participants x {} trials/class x 6 classes)",
        dataset.len(),
        dataset.spec.participants,
        dataset.spec.trials_per_class
    );
    let (windows, clusters) = sweep_grids();
    let points = sweep(
        &dataset.records,
        limb,
        &windows,
        &clusters,
        &base_config(),
        3,
        repeats(),
    )
    .expect("sweep succeeds");

    print_sweep_table("Mis-classification rate (%)", &points, |p| {
        p.misclassification_pct
    });
    for &w in &windows {
        let series: Vec<f64> = points
            .iter()
            .filter(|p| p.window_ms == w)
            .map(|p| p.misclassification_pct)
            .collect();
        println!("window {w:>5.0} ms: {}", sparkline(&series));
    }
    print_sweep_json("fig6", &points);
}
