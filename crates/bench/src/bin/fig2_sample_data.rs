//! Regenerates **Figure 2**: synchronous raw data for one "raise arm"
//! trial — the biceps and upper-forearm EMG envelopes alongside the 3-D
//! trajectory of the wrist (radius marker), all on the common 120 Hz
//! frame axis.
//!
//! Prints a downsampled table of the three panels plus summary statistics
//! that capture the figure's message: the muscle bursts coincide with the
//! wrist displacement.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin fig2_sample_data`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionClass};
use kinemyo_bench::{experiment_seed, sparkline};

fn main() {
    println!("Figure 2 — sample synchronous EMG + motion capture (raise arm)");
    println!("seed = {}", experiment_seed());
    let spec = DatasetSpec::hand_default()
        .with_size(1, 1)
        .with_seed(experiment_seed());
    let ds = Dataset::generate(spec).expect("dataset generation succeeds");
    let r = ds
        .records
        .iter()
        .find(|r| r.class == MotionClass::RaiseArm)
        .expect("raise-arm record exists");

    let frames = r.frames();
    println!(
        "frames: {frames} at 120 Hz ({:.1} s)",
        frames as f64 / 120.0
    );

    // Channel 0 = biceps, channel 2 = upper forearm (Limb::RightHand order).
    let biceps: Vec<f64> = (0..frames).map(|f| r.emg[(f, 0)]).collect();
    let forearm: Vec<f64> = (0..frames).map(|f| r.emg[(f, 2)]).collect();
    // Radius marker = segment 2 → columns 6..9.
    let wrist_x: Vec<f64> = (0..frames).map(|f| r.mocap[(f, 6)]).collect();
    let wrist_y: Vec<f64> = (0..frames).map(|f| r.mocap[(f, 7)]).collect();
    let wrist_z: Vec<f64> = (0..frames).map(|f| r.mocap[(f, 8)]).collect();

    let stride = (frames / 48).max(1);
    let ds_series = |v: &[f64]| -> Vec<f64> { v.iter().step_by(stride).copied().collect() };
    println!(
        "\nRight Hand Biceps (EMG, V)      {}",
        sparkline(&ds_series(&biceps))
    );
    println!(
        "Right Hand Upper ForeArm (EMG)  {}",
        sparkline(&ds_series(&forearm))
    );
    println!(
        "Right Hand Wrist X (mm)         {}",
        sparkline(&ds_series(&wrist_x))
    );
    println!(
        "Right Hand Wrist Y (mm)         {}",
        sparkline(&ds_series(&wrist_y))
    );
    println!(
        "Right Hand Wrist Z (mm)         {}",
        sparkline(&ds_series(&wrist_z))
    );

    println!(
        "\n{:>8} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "frame", "biceps (V)", "forearm (V)", "x (mm)", "y (mm)", "z (mm)"
    );
    for f in (0..frames).step_by((frames / 24).max(1)) {
        println!(
            "{f:>8} {:>14.6e} {:>14.6e} {:>10.1} {:>10.1} {:>10.1}",
            biceps[f], forearm[f], wrist_x[f], wrist_y[f], wrist_z[f]
        );
    }

    // The figure's story: muscle activity and wrist elevation coincide.
    let peak_emg_frame = biceps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    let peak_y_frame = wrist_y
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    println!(
        "\nbiceps peak at frame {peak_emg_frame}, wrist-height peak at frame {peak_y_frame} \
         ({:+.2} s apart)",
        (peak_y_frame as f64 - peak_emg_frame as f64) / 120.0
    );
    let json = serde_json::json!({
        "figure": "fig2",
        "seed": experiment_seed(),
        "frames": frames,
        "biceps_peak_frame": peak_emg_frame,
        "wrist_peak_frame": peak_y_frame,
        "biceps_peak_v": biceps[peak_emg_frame],
        "wrist_peak_mm": wrist_y[peak_y_frame],
    });
    println!("JSON:{json}");
}
