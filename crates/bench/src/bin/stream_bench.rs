//! Streaming-session throughput benchmark for the in-process
//! [`kinemyo_session::SessionEngine`] — the engine every wire session
//! runs on, measured without the socket so the numbers hold in minimal
//! build environments (the offline stub build cannot move JSON at
//! runtime; the wire variant lives in the `session_throughput` Criterion
//! bench).
//!
//! For each concurrency level (1, 16 and 64 live sessions) the bench
//! replays a seeded [`kinemyo_biosim::replay`] stream through every
//! session frame by frame — the same per-frame `push` the daemon issues —
//! and reports sustained frames/sec plus the per-frame p99 latency, the
//! quantity the session layer budgets per *window*
//! ([`SessionConfig::window_budget_us`]).
//!
//! ```text
//! stream_bench [--frames N] [--seed S] [--out FILE] [--gate]
//! ```
//!
//! `--out` writes a flat `kinemyo-bench-json/1` file (`stream/s{S}/...`
//! keys; latencies in nanoseconds, rates in frames/sec riding in the
//! same map, like `ann_sweep`'s recall entries). `--gate` enforces the
//! ROADMAP acceptance contract and exits non-zero on failure: at 64
//! concurrent sessions the per-frame p99 — even at a window boundary,
//! where the warm-started eigensolve runs — must stay under the
//! per-window latency budget.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin stream_bench`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig, SharedModel};
use kinemyo_biosim::replay::{generate_replay, ReplaySpec};
use kinemyo_session::{ReloadPolicy, SessionConfig, SessionEngine, WireFrame};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

const SESSION_LEVELS: [usize; 3] = [1, 16, 64];

struct Args {
    frames: usize,
    seed: u64,
    out: Option<String>,
    gate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        frames: 2_400,
        seed: 2007,
        out: None,
        gate: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < raw.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            raw.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", raw[*i - 1]))
        };
        match raw[i].as_str() {
            "--frames" => args.frames = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(take(&mut i)?),
            "--gate" => args.gate = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.frames == 0 {
        return Err("--frames must be >= 1".into());
    }
    Ok(args)
}

fn trained_model(seed: u64) -> MotionClassifier {
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3).with_seed(seed))
        .expect("dataset generates");
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    MotionClassifier::train(&refs, ds.spec.limb, &config).expect("training succeeds")
}

/// A seeded replay stream, tiled out to exactly `frames` wire frames.
fn replay_frames(frames: usize, seed: u64) -> Vec<WireFrame> {
    let spec = ReplaySpec::parse(&format!("hand:1:6:{seed}")).expect("spec parses");
    let streams = generate_replay(&spec).expect("replay generates");
    let base: Vec<WireFrame> = streams[0]
        .frames
        .iter()
        .map(|f| WireFrame {
            mocap: f.mocap.clone(),
            pelvis: f.pelvis,
            emg: f.emg.clone(),
            t_ms: Some(f.t_ms),
        })
        .collect();
    (0..frames).map(|i| base[i % base.len()].clone()).collect()
}

/// Renders the flat bench map as `kinemyo-bench-json/1` without a JSON
/// dependency (same reasoning as `bench_json`: the perf gate must work
/// in minimal build environments).
fn render_bench_json(benches: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n  \"schema\": \"kinemyo-bench-json/1\",\n  \"benches\": {\n");
    for (i, (k, v)) in benches.iter().enumerate() {
        out.push_str(&format!("    \"{k}\": {v}"));
        out.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn percentile_ns(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

struct LevelOutcome {
    frames_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
    windows: u64,
}

/// Runs `sessions` concurrent sessions, each pushing `frames` frames one
/// by one, and merges the per-frame latency samples.
fn run_level(engine: &SessionEngine, sessions: usize, frames: &[WireFrame]) -> LevelOutcome {
    let start = Instant::now();
    let mut samples: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                scope.spawn(move || {
                    let opened = engine
                        .open(ReloadPolicy::Rebind, None)
                        .expect("session opens");
                    let mut lat = Vec::with_capacity(frames.len());
                    for frame in frames {
                        let t = Instant::now();
                        let reply = engine
                            .push(opened.session, std::slice::from_ref(frame))
                            .expect("push succeeds");
                        lat.push(t.elapsed().as_nanos() as u64);
                        assert!(reply.rejected.is_empty(), "replay frames are clean");
                    }
                    engine.close(opened.session).expect("session closes");
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session thread"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    samples.sort_unstable();
    let total = (sessions * frames.len()) as f64;
    LevelOutcome {
        frames_per_sec: total / elapsed,
        p50_ns: percentile_ns(&samples, 0.50),
        p99_ns: percentile_ns(&samples, 0.99),
        windows: engine.stats().windows,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let model = trained_model(args.seed);
    let window_len = model.window().len();
    let frames = replay_frames(args.frames, args.seed);
    let session_config = SessionConfig::default().with_max_sessions(2 * SESSION_LEVELS[2]);
    let budget_us = session_config.window_budget_us;
    println!(
        "stream bench: {} frames/session (window {} frames), budget {} us/window, seed {}",
        args.frames, window_len, budget_us, args.seed
    );

    let mut benches: BTreeMap<String, f64> = BTreeMap::new();
    let mut gate_ok = true;
    println!(
        "{:>9} {:>14} {:>12} {:>12} {:>10}",
        "sessions", "frames/sec", "p50 us", "p99 us", "windows"
    );
    for sessions in SESSION_LEVELS {
        // A fresh engine per level so window counters don't bleed across
        // levels; the model snapshot is shared (Arc) and stays warm.
        let shared = SharedModel::new(trained_model(args.seed));
        let engine = SessionEngine::new(shared, session_config.clone()).expect("engine constructs");
        let outcome = run_level(&engine, sessions, &frames);
        println!(
            "{:>9} {:>14.0} {:>12.1} {:>12.1} {:>10}",
            sessions,
            outcome.frames_per_sec,
            outcome.p50_ns / 1e3,
            outcome.p99_ns / 1e3,
            outcome.windows
        );
        let tag = format!("stream/s{sessions}");
        benches.insert(format!("{tag}/frames_per_sec"), outcome.frames_per_sec);
        benches.insert(format!("{tag}/p50_frame_ns"), outcome.p50_ns);
        benches.insert(format!("{tag}/p99_frame_ns"), outcome.p99_ns);
        let expected_windows = (sessions * (args.frames / window_len)) as u64;
        if outcome.windows != expected_windows {
            eprintln!(
                "stream_bench: GATE FAIL at {sessions} sessions: {} windows completed, \
                 expected {expected_windows} (lost rolling results)",
                outcome.windows
            );
            gate_ok = false;
        }
        if sessions == SESSION_LEVELS[2] && outcome.p99_ns / 1e3 >= budget_us as f64 {
            eprintln!(
                "stream_bench: GATE FAIL: per-frame p99 {:.1} us at {sessions} sessions \
                 breaches the {budget_us} us window budget",
                outcome.p99_ns / 1e3
            );
            gate_ok = false;
        }
    }

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, render_bench_json(&benches)) {
            eprintln!("stream_bench: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }
    if args.gate {
        if gate_ok {
            println!("gate: PASS (p99 under the window budget at 64 sessions)");
        } else {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
