//! **Ablation: fuzzy vs adaptive-fuzzy vs hard clustering.** The paper argues fuzzy
//! clustering suits non-stationary biomedical data better than
//! traditional (crisp) clustering. This binary compares the paper's FCM +
//! min/max-membership vectors against hard k-means + visit-histogram
//! vectors on the same splits.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_fuzzy_vs_hard`.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::stratified_split;
use kinemyo_bench::custom::{evaluate_variant, ClusterKind, VariantConfig};
use kinemyo_bench::experiment_seed;

fn main() {
    println!("Ablation — fuzzy (FCM min/max) vs hard (k-means histogram)");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    for limb in [Limb::RightHand, Limb::RightLeg] {
        let spec = match limb {
            Limb::RightHand => DatasetSpec::hand_default(),
            Limb::RightLeg => DatasetSpec::leg_default(),
            Limb::WholeBody => DatasetSpec::whole_body_default(),
        }
        .with_seed(experiment_seed());
        let ds = Dataset::generate(spec).expect("dataset generation succeeds");
        let (train, query) = stratified_split(&ds.records, 2);
        for clusters in [10usize, 25] {
            for (name, kind) in [
                ("fcm", ClusterKind::Fuzzy),
                ("gk", ClusterKind::GustafsonKessel),
                ("hard", ClusterKind::Hard),
            ] {
                let cfg = VariantConfig {
                    clusters,
                    cluster: kind,
                    seed: experiment_seed(),
                    ..VariantConfig::default()
                };
                let (mis, knn_pct) = evaluate_variant(&train, &query, limb, &cfg);
                println!(
                    "{limb:<11} c={clusters:<3} {name:<6} misclass {mis:>6.2}%   kNN-correct {knn_pct:>6.2}%"
                );
                rows.push(serde_json::json!({
                    "limb": limb.to_string(), "clusters": clusters, "kind": name,
                    "misclassification_pct": mis, "knn_correct_pct": knn_pct,
                }));
            }
        }
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_fuzzy_vs_hard",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
