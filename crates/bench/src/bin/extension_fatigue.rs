//! **Extension: fatigue tracking.** The paper lists fatigue among the
//! effects degrading biomedical signal purity (Sec. 7). The canonical
//! fatigue marker is the downshift of the EMG median frequency over a
//! sustained contraction. This binary synthesizes a fresh and a fatigued
//! sustained contraction and prints their median-frequency tracks, then
//! measures how fatigue degrades classification when it contaminates the
//! query trials only (train fresh, query fatigued).
//!
//! Run with `cargo run --release -p kinemyo-bench --bin extension_fatigue`.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_bench::experiment_seed;
use kinemyo_biosim::emg::{synthesize_channel, EmgSynthConfig};
use kinemyo_dsp::stft::spectrogram;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    println!("Extension — EMG fatigue analysis");
    println!("seed = {}\n", experiment_seed());

    // --- Median-frequency tracks over a 10 s sustained contraction -------
    let act = vec![1.0; 1200];
    println!("median frequency (Hz) during a sustained contraction:");
    println!("{:>8} {:>10} {:>10}", "time (s)", "fresh", "fatigued");
    let mut tracks = Vec::new();
    for fatigue in [0.0, 0.7] {
        let cfg = EmgSynthConfig {
            fatigue,
            ..EmgSynthConfig::clean()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(experiment_seed());
        let raw =
            synthesize_channel(&act, 120.0, 10.0, &cfg, &mut rng).expect("synthesis succeeds");
        let sg = spectrogram(&raw, 1000.0, 1024, 1000).expect("spectrogram succeeds");
        tracks.push(sg.median_frequency_track());
    }
    let n = tracks[0].len().min(tracks[1].len());
    for (fresh, fatigued) in tracks[0].iter().zip(&tracks[1]) {
        println!("{:>8.1} {:>10.1} {:>10.1}", fresh.0, fresh.1, fatigued.1);
    }
    let drop = tracks[1][0].1 - tracks[1][n - 1].1;
    println!("\nfatigued-trial median-frequency drop: {drop:.1} Hz (fresh stays flat)");

    // --- Does fatigue break the classifier? -------------------------------
    let fresh_spec = DatasetSpec::hand_default()
        .with_size(2, 5)
        .with_seed(experiment_seed());
    let mut tired_spec = fresh_spec.clone();
    tired_spec.emg.fatigue = 0.7;
    let fresh = Dataset::generate(fresh_spec).expect("dataset generates");
    let tired = Dataset::generate(tired_spec).expect("dataset generates");
    let (train, _) = kinemyo::stratified_split(&fresh.records, 1);
    let (_, tired_queries) = kinemyo::stratified_split(&tired.records, 1);
    let config = PipelineConfig::default()
        .with_clusters(12)
        .with_seed(experiment_seed());
    let model =
        MotionClassifier::train(&train, Limb::RightHand, &config).expect("training succeeds");
    let mut wrong_fresh = 0;
    let mut wrong_tired = 0;
    let (_, fresh_queries) = kinemyo::stratified_split(&fresh.records, 1);
    for q in &fresh_queries {
        if model.classify_record(q).expect("classify").predicted != q.class {
            wrong_fresh += 1;
        }
    }
    for q in &tired_queries {
        if model.classify_record(q).expect("classify").predicted != q.class {
            wrong_tired += 1;
        }
    }
    println!(
        "\nclassifier trained on fresh trials:\n  fresh queries   misclass {:>5.1}%\n  fatigued queries misclass {:>5.1}%",
        wrong_fresh as f64 / fresh_queries.len() as f64 * 100.0,
        wrong_tired as f64 / tired_queries.len() as f64 * 100.0
    );
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "extension_fatigue",
            "seed": experiment_seed(),
            "fatigued_mf_drop_hz": drop,
            "fresh_query_misclass_pct": wrong_fresh as f64 / fresh_queries.len() as f64 * 100.0,
            "fatigued_query_misclass_pct": wrong_tired as f64 / tired_queries.len() as f64 * 100.0,
        })
    );
}
