//! Recall@k-versus-latency sweep for the `kinemyo-ann` backend.
//!
//! Builds a clustered synthetic motion-vector database (the paper's
//! feature vectors live in `[0,1]^2c`; this uses the same scale), runs
//! the exact linear scan as ground truth, then sweeps the ANN search
//! beam (`ef`) and reports recall@10 and mean query latency per setting.
//!
//! ```text
//! ann_sweep [--points N] [--dim D] [--queries Q] [--seed S]
//!           [--quantize] [--out FILE] [--gate]
//! ```
//!
//! `--out` writes a flat `kinemyo-bench-json/1` file (the same schema
//! `bench_json collect` emits; see DESIGN.md §13). Latency entries are
//! mean nanoseconds per query; `recall_at_10_*` entries are dimensionless
//! fractions in `[0,1]` riding in the same map, and `bench_json compare`
//! treats a recall *drop* beyond tolerance as a regression exactly like a
//! latency rise.
//!
//! `--gate` enforces the ROADMAP acceptance contract and exits non-zero
//! on failure: some swept `ef` must reach recall@10 ≥ 0.95 **and** mean
//! ANN query latency at least 10× faster than the linear scan — i.e. the
//! recall/latency frontier contains a point satisfying both at once (the
//! speedup half of the gate is only armed at ≥ 100 000 points, where the
//! asymptotics dominate constant factors).
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ann_sweep`.

use kinemyo_ann::{AnnIndex, AnnParams};
use kinemyo_modb::{knn, FeatureDb};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

const EF_SWEEP: [usize; 4] = [32, 64, 96, 128];
const K: usize = 10;
const GATE_RECALL: f64 = 0.95;
const GATE_SPEEDUP: f64 = 10.0;
const GATE_MIN_POINTS: usize = 100_000;

struct Args {
    points: usize,
    dim: usize,
    queries: usize,
    seed: u64,
    quantize: bool,
    out: Option<String>,
    gate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        points: 100_000,
        dim: 30,
        queries: 200,
        seed: 2007,
        quantize: false,
        out: None,
        gate: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < raw.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            raw.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", raw[*i - 1]))
        };
        match raw[i].as_str() {
            "--points" => args.points = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--dim" => args.dim = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => args.queries = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--quantize" => args.quantize = true,
            "--out" => args.out = Some(take(&mut i)?),
            "--gate" => args.gate = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.points == 0 || args.dim == 0 || args.queries == 0 {
        return Err("--points, --dim and --queries must be >= 1".into());
    }
    Ok(args)
}

/// Cluster centers shared by the database and the query workload —
/// queries in a motion database resemble stored motions.
fn centers(dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCE17);
    (0..60)
        .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
        .collect()
}

fn clustered_db(n: usize, dim: usize, seed: u64) -> FeatureDb<usize> {
    let cs = centers(dim, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = FeatureDb::new(dim);
    for i in 0..n {
        let c = &cs[i % cs.len()];
        let v: Vec<f64> = c
            .iter()
            .map(|&x| (x + (rng.random::<f64>() - 0.5) * 0.1).clamp(0.0, 1.0))
            .collect();
        db.insert(i, i % cs.len(), v).expect("insert");
    }
    db
}

fn query_set(q: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let cs = centers(dim, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E3779B9);
    (0..q)
        .map(|i| {
            let c = &cs[i % cs.len()];
            c.iter()
                .map(|&x| (x + (rng.random::<f64>() - 0.5) * 0.15).clamp(0.0, 1.0))
                .collect()
        })
        .collect()
}

/// Renders the flat bench map as `kinemyo-bench-json/1` without a JSON
/// dependency (same reasoning as `bench_json`: the perf gate must work
/// in minimal build environments).
fn render_bench_json(benches: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n  \"schema\": \"kinemyo-bench-json/1\",\n  \"benches\": {\n");
    for (i, (k, v)) in benches.iter().enumerate() {
        out.push_str(&format!("    \"{k}\": {v}"));
        out.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ann_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ANN sweep: {} points, dim {}, {} queries, seed {}{}",
        args.points,
        args.dim,
        args.queries,
        args.seed,
        if args.quantize { ", quantized" } else { "" }
    );

    let db = clustered_db(args.points, args.dim, args.seed);
    let queries = query_set(args.queries, args.dim, args.seed);

    let build_start = Instant::now();
    let params = AnnParams::default()
        .with_seed(args.seed)
        .with_quantize(args.quantize);
    let index = AnnIndex::build(&db, params);
    let build_ns = build_start.elapsed().as_nanos() as f64;
    println!(
        "build: {:.2} s ({:.0} ns/point)",
        build_ns / 1e9,
        build_ns / args.points as f64
    );

    // Ground truth + linear baseline timing in one pass.
    let lin_start = Instant::now();
    let truth: Vec<BTreeSet<usize>> = queries
        .iter()
        .map(|q| {
            knn(&db, q, K)
                .expect("linear scan")
                .iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let linear_ns = lin_start.elapsed().as_nanos() as f64 / args.queries as f64;
    println!("linear scan: {:.0} ns/query\n", linear_ns);

    let mut benches: BTreeMap<String, f64> = BTreeMap::new();
    let tag = format!("n{}_d{}", args.points, args.dim);
    benches.insert(format!("ann_sweep/{tag}/linear"), linear_ns);
    benches.insert(format!("ann_sweep/{tag}/build"), build_ns);

    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "ef", "ns/query", "recall@10", "speedup"
    );
    let mut frontier: Vec<(usize, f64, f64)> = Vec::new();
    for ef in EF_SWEEP {
        let run_start = Instant::now();
        let results: Vec<Vec<kinemyo_modb::Neighbor<usize>>> = queries
            .iter()
            .map(|q| index.graph_knn(q, K, ef).expect("graph knn"))
            .collect();
        let ann_ns = run_start.elapsed().as_nanos() as f64 / args.queries as f64;
        let recall: f64 = results
            .iter()
            .zip(&truth)
            .map(|(got, want)| {
                let hits = got.iter().filter(|n| want.contains(&n.id)).count();
                hits as f64 / want.len().max(1) as f64
            })
            .sum::<f64>()
            / args.queries as f64;
        let speedup = linear_ns / ann_ns;
        println!("{ef:>6} {ann_ns:>14.0} {recall:>12.4} {speedup:>9.1}x");
        benches.insert(format!("ann_sweep/{tag}/ef{ef}"), ann_ns);
        benches.insert(format!("ann_sweep/{tag}/recall_at_10_ef{ef}"), recall);
        frontier.push((ef, recall, speedup));
    }

    if let Some(path) = &args.out {
        let rendered = render_bench_json(&benches);
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("ann_sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }

    if args.gate {
        let need_speedup = args.points >= GATE_MIN_POINTS;
        let winner = frontier
            .iter()
            .find(|&&(_, recall, speedup)| {
                recall >= GATE_RECALL && (!need_speedup || speedup >= GATE_SPEEDUP)
            })
            .copied();
        match winner {
            Some((ef, recall, speedup)) => println!(
                "GATE PASS: ef {ef} reaches recall@10 {recall:.4} >= {GATE_RECALL} at \
                 {speedup:.1}x vs linear"
            ),
            None => {
                eprintln!(
                    "GATE FAIL: no swept ef reaches recall@10 >= {GATE_RECALL}{} \
                     (frontier: {frontier:?})",
                    if need_speedup {
                        format!(" with speedup >= {GATE_SPEEDUP}x")
                    } else {
                        String::new()
                    }
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
