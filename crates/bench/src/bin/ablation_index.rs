//! **Ablation: retrieval index choice.** The paper notes the feature
//! vectors "can be applied to any indexing technique" and cites iDistance
//! (ref \[14\]). This binary measures query latency of linear scan, the
//! VP-tree and iDistance on growing databases of `2c`-length motion
//! vectors, verifying all three return identical neighbours.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_index`.

use kinemyo_bench::experiment_seed;
use kinemyo_modb::{knn, FeatureDb, IDistance, VpTree};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Synthetic motion vectors: min/max pairs in `[0,1]`, sparse like real ones.
fn synthetic_db(n: usize, clusters: usize, seed: u64) -> FeatureDb<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dim = 2 * clusters;
    let mut db = FeatureDb::new(dim);
    for i in 0..n {
        let mut v = vec![0.0; dim];
        // Each motion visits ~6 clusters.
        for _ in 0..6 {
            let k: usize = rng.random_range(0..clusters);
            let hi: f64 = 0.3 + rng.random::<f64>() * 0.7;
            let lo: f64 = hi * rng.random::<f64>();
            v[2 * k] = lo;
            v[2 * k + 1] = hi;
        }
        db.insert(i, i % 12, v).unwrap();
    }
    db
}

fn main() {
    println!("Ablation — retrieval index (k = 5, dim = 30)");
    println!("seed = {}\n", experiment_seed());
    let clusters = 15;
    let queries = 200;
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "n", "linear (µs)", "vp-tree (µs)", "idistance (µs)", "agree"
    );
    let mut rows = Vec::new();
    for &n in &[1_000usize, 5_000, 20_000, 50_000] {
        let db = synthetic_db(n, clusters, experiment_seed());
        let vp = VpTree::build(&db);
        let idist = IDistance::build(&db, 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(experiment_seed() + 1);
        let qs: Vec<Vec<f64>> = (0..queries)
            .map(|_| (0..2 * clusters).map(|_| rng.random::<f64>()).collect())
            .collect();

        let mut agree = true;
        let t0 = Instant::now();
        let linear_results: Vec<_> = qs.iter().map(|q| knn(&db, q, 5).unwrap()).collect();
        let t_linear = t0.elapsed().as_micros() as f64 / queries as f64;

        let t0 = Instant::now();
        let vp_results: Vec<_> = qs.iter().map(|q| vp.knn(q, 5).unwrap()).collect();
        let t_vp = t0.elapsed().as_micros() as f64 / queries as f64;

        let t0 = Instant::now();
        let id_results: Vec<_> = qs.iter().map(|q| idist.knn(q, 5).unwrap()).collect();
        let t_id = t0.elapsed().as_micros() as f64 / queries as f64;

        for ((a, b), c) in linear_results.iter().zip(&vp_results).zip(&id_results) {
            for i in 0..a.len() {
                if (a[i].distance - b[i].distance).abs() > 1e-9
                    || (a[i].distance - c[i].distance).abs() > 1e-9
                {
                    agree = false;
                }
            }
        }
        println!("{n:>8} {t_linear:>14.1} {t_vp:>14.1} {t_id:>14.1} {agree:>10}");
        rows.push(serde_json::json!({
            "n": n, "linear_us": t_linear, "vptree_us": t_vp, "idistance_us": t_id,
            "agree": agree,
        }));
        assert!(agree, "indexes must return identical neighbours");
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_index",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
