//! **Ablation: acquisition robustness.** Sweeps the acquisition nuisances
//! the paper's Sec. 7 worries about — trigger desynchronization, marker
//! occlusion, power-line contamination (with and without the notch
//! extension) — and measures their effect on classification.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_robustness`.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::{evaluate, stratified_split, PipelineConfig};
use kinemyo_bench::experiment_seed;

fn run(label: &str, spec: DatasetSpec, rows: &mut Vec<serde_json::Value>) {
    let ds = Dataset::generate(spec).expect("dataset generates");
    let (train, query) = stratified_split(&ds.records, 2);
    let cfg = PipelineConfig::default()
        .with_clusters(15)
        .with_seed(experiment_seed());
    let out = evaluate(&train, &query, Limb::RightHand, &cfg).expect("evaluation succeeds");
    println!(
        "{label:<34} misclass {:>6.2}%   kNN-correct {:>6.2}%",
        out.misclassification_pct, out.knn_correct_pct
    );
    rows.push(serde_json::json!({
        "config": label,
        "misclassification_pct": out.misclassification_pct,
        "knn_correct_pct": out.knn_correct_pct,
    }));
}

fn main() {
    println!("Ablation — acquisition robustness (hand, c=15, w=100ms)");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    let base = DatasetSpec::hand_default().with_seed(experiment_seed());

    run("baseline", base.clone(), &mut rows);

    for jitter_ms in [10.0, 50.0] {
        let mut spec = base.clone();
        spec.acquisition.trigger_jitter_ms = jitter_ms;
        run(&format!("trigger jitter {jitter_ms} ms"), spec, &mut rows);
    }

    for rate in [0.01, 0.05] {
        let mut spec = base.clone();
        spec.mocap_noise.dropout_rate = rate;
        run(
            &format!("marker dropout {:.0}%/frame", rate * 100.0),
            spec,
            &mut rows,
        );
    }

    let mut noisy_pl = base.clone();
    noisy_pl.emg.powerline_rel = 0.15;
    run("strong 60 Hz pickup, no notch", noisy_pl.clone(), &mut rows);
    noisy_pl.acquisition.notch_60hz = true;
    run("strong 60 Hz pickup + notch", noisy_pl, &mut rows);

    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_robustness",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
