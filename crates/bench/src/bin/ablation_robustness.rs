//! **Ablation: acquisition robustness.** Sweeps the acquisition nuisances
//! the paper's Sec. 7 worries about — trigger desynchronization, marker
//! occlusion, power-line contamination (with and without the notch
//! extension) — and measures their effect on classification.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_robustness`.

use kinemyo::biosim::{inject_faults, Dataset, DatasetSpec, FaultSpec, Limb, MotionRecord};
use kinemyo::{
    evaluate, evaluate_guarded, stratified_split, GuardConfig, GuardedClassifier, MotionClassifier,
    PipelineConfig,
};
use kinemyo_bench::experiment_seed;

fn run(label: &str, spec: DatasetSpec, rows: &mut Vec<serde_json::Value>) {
    let ds = Dataset::generate(spec).expect("dataset generates");
    let (train, query) = stratified_split(&ds.records, 2);
    let cfg = PipelineConfig::default()
        .with_clusters(15)
        .with_seed(experiment_seed());
    let out = evaluate(&train, &query, Limb::RightHand, &cfg).expect("evaluation succeeds");
    println!(
        "{label:<34} misclass {:>6.2}%   kNN-correct {:>6.2}%",
        out.misclassification_pct, out.knn_correct_pct
    );
    rows.push(serde_json::json!({
        "config": label,
        "misclassification_pct": out.misclassification_pct,
        "knn_correct_pct": out.knn_correct_pct,
    }));
}

/// Accuracy vs injected sensor-fault rate, bare pipeline vs fault guard.
/// Training always sees clean records (faults are an acquisition-time
/// phenomenon); queries are corrupted with [`FaultSpec::from_rate`]. The
/// bare pipeline's typed rejections of corrupt queries count as errors —
/// that is exactly the degradation the guard exists to absorb.
fn fault_sweep(base: DatasetSpec, rows: &mut Vec<serde_json::Value>) {
    let ds = Dataset::generate(base).expect("dataset generates");
    let (train, clean_queries) = stratified_split(&ds.records, 2);
    let cfg = PipelineConfig::default()
        .with_clusters(15)
        .with_seed(experiment_seed());
    let bare = MotionClassifier::train(&train, Limb::RightHand, &cfg).expect("bare model trains");
    let guarded = GuardedClassifier::train(&train, Limb::RightHand, &cfg, GuardConfig::default())
        .expect("guarded model trains");

    println!("\nSensor-fault sweep (same clean-trained models, corrupted queries):");
    for rate in [0.0, 0.02, 0.05, 0.10] {
        let spec = FaultSpec::from_rate(rate, experiment_seed() ^ 0xFA17);
        let faulted: Vec<MotionRecord> = clean_queries
            .iter()
            .map(|r| inject_faults(r, &spec).0)
            .collect();
        let queries: Vec<&MotionRecord> = faulted.iter().collect();

        let mut off_errors = 0usize;
        for q in &queries {
            match bare.classify_record(q) {
                Ok(c) if c.predicted == q.class => {}
                _ => off_errors += 1,
            }
        }
        let off_pct = off_errors as f64 / queries.len() as f64 * 100.0;
        let on = evaluate_guarded(&guarded, &queries).expect("guarded evaluation succeeds");
        println!(
            "fault rate {:>4.1}%: misclass guard-off {:>6.2}%  guard-on {:>6.2}%   \
             (fallback windows {}, quarantined {})",
            rate * 100.0,
            off_pct,
            on.misclassification_pct,
            on.health.windows_fallback_mocap + on.health.windows_fallback_emg,
            on.health.windows_quarantined
        );
        rows.push(serde_json::json!({
            "config": format!("fault rate {:.2}", rate),
            "fault_rate": rate,
            "misclassification_pct_guard_off": off_pct,
            "misclassification_pct_guard_on": on.misclassification_pct,
            "windows_fallback": on.health.windows_fallback_mocap + on.health.windows_fallback_emg,
            "windows_quarantined": on.health.windows_quarantined,
        }));
    }
}

fn main() {
    println!("Ablation — acquisition robustness (hand, c=15, w=100ms)");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    let base = DatasetSpec::hand_default().with_seed(experiment_seed());

    run("baseline", base.clone(), &mut rows);

    for jitter_ms in [10.0, 50.0] {
        let mut spec = base.clone();
        spec.acquisition.trigger_jitter_ms = jitter_ms;
        run(&format!("trigger jitter {jitter_ms} ms"), spec, &mut rows);
    }

    for rate in [0.01, 0.05] {
        let mut spec = base.clone();
        spec.mocap_noise.dropout_rate = rate;
        run(
            &format!("marker dropout {:.0}%/frame", rate * 100.0),
            spec,
            &mut rows,
        );
    }

    let mut noisy_pl = base.clone();
    noisy_pl.emg.powerline_rel = 0.15;
    run("strong 60 Hz pickup, no notch", noisy_pl.clone(), &mut rows);
    noisy_pl.acquisition.notch_60hz = true;
    run("strong 60 Hz pickup + notch", noisy_pl, &mut rows);

    fault_sweep(base, &mut rows);

    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_robustness",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
