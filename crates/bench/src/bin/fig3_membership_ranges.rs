//! Regenerates **Figure 3**: the range of the highest degree of
//! membership per cluster for two sets of two similar right-hand motions
//! ("raise arm" M1/M2 and "throw ball" M1/M2) with c = 6 clusters.
//!
//! The figure's message: similar motions occupy the *same* clusters with
//! overlapping membership ranges, and the two classes occupy different
//! cluster subsets.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin fig3_membership_ranges`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionClass, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_bench::experiment_seed;

fn main() {
    println!("Figure 3 — highest degree of membership per cluster, c = 6");
    println!("seed = {}", experiment_seed());
    let ds = Dataset::generate(
        DatasetSpec::hand_default()
            .with_size(1, 4)
            .with_seed(experiment_seed()),
    )
    .expect("dataset generation succeeds");
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default()
        .with_clusters(6)
        .with_window_ms(100.0)
        .with_seed(experiment_seed());
    let model = MotionClassifier::train(&refs, ds.spec.limb, &config).expect("training succeeds");

    let mut selected: Vec<(&str, &MotionRecord)> = Vec::new();
    for (class, label) in [
        (MotionClass::RaiseArm, "Raise Arm  - Right Hand"),
        (MotionClass::ThrowBall, "Throw Ball - Right Hand"),
    ] {
        let mut found = ds
            .records
            .iter()
            .filter(|r| r.class == class)
            .take(2)
            .enumerate()
            .map(|(i, r)| (if i == 0 { "M1" } else { "M2" }, label, r));
        for (m, label, r) in found.by_ref() {
            selected.push((Box::leak(format!("{label} {m}").into_boxed_str()), r));
        }
    }

    let mut json_rows = Vec::new();
    for (label, record) in &selected {
        let assignments = model
            .window_assignments(record)
            .expect("assignment computation succeeds");
        // Per cluster: range of highest memberships among windows that
        // mapped there (the vertical bars of Fig. 3).
        println!("\n{label} ({} windows)", assignments.len());
        println!(
            "{:>8} {:>8} {:>10} {:>10}",
            "cluster", "windows", "min h", "max h"
        );
        let c = model.fcm().num_clusters();
        let mut row = Vec::new();
        for k in 0..c {
            let hs: Vec<f64> = assignments
                .iter()
                .filter(|a| a.cluster == k)
                .map(|a| a.membership)
                .collect();
            if hs.is_empty() {
                println!("{:>8} {:>8} {:>10} {:>10}", k + 1, 0, "-", "-");
                row.push(serde_json::json!({"cluster": k + 1, "windows": 0}));
            } else {
                let lo = hs.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = hs.iter().cloned().fold(0.0_f64, f64::max);
                println!("{:>8} {:>8} {:>10.3} {:>10.3}", k + 1, hs.len(), lo, hi);
                row.push(serde_json::json!({
                    "cluster": k + 1, "windows": hs.len(), "min": lo, "max": hi
                }));
            }
        }
        json_rows.push(serde_json::json!({ "motion": label, "clusters": row }));
    }

    // Quantify the figure's claim: same-class cluster sets overlap more
    // than cross-class sets (Jaccard index over visited clusters).
    let visited = |r: &MotionRecord| -> std::collections::BTreeSet<usize> {
        model
            .window_assignments(r)
            .expect("assignments")
            .iter()
            .map(|a| a.cluster)
            .collect()
    };
    let jaccard = |a: &std::collections::BTreeSet<usize>, b: &std::collections::BTreeSet<usize>| {
        let inter = a.intersection(b).count() as f64;
        let union = a.union(b).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    };
    let sets: Vec<_> = selected.iter().map(|(_, r)| visited(r)).collect();
    let same = (jaccard(&sets[0], &sets[1]) + jaccard(&sets[2], &sets[3])) / 2.0;
    let cross = (jaccard(&sets[0], &sets[2])
        + jaccard(&sets[0], &sets[3])
        + jaccard(&sets[1], &sets[2])
        + jaccard(&sets[1], &sets[3]))
        / 4.0;
    println!("\ncluster-set overlap (Jaccard): same-class {same:.3}, cross-class {cross:.3}");
    let json = serde_json::json!({
        "figure": "fig3",
        "seed": experiment_seed(),
        "motions": json_rows,
        "jaccard_same_class": same,
        "jaccard_cross_class": cross,
    });
    println!("JSON:{json}");
}
