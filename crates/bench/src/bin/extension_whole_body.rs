//! **Extension: whole-body classification.** The paper analyzes one limb
//! at a time but claims the approach "is flexible enough to classify the
//! human motions for whole human body" (Sec. 5). This binary tests the
//! claim: all 7 segments + all 6 EMG channels, all 12 motion classes in
//! one feature space, compared against the per-limb analyses at the same
//! settings.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin extension_whole_body`.

use kinemyo::biosim::Limb;
use kinemyo::{evaluate, stratified_split, PipelineConfig};
use kinemyo_bench::{evaluation_dataset, experiment_seed};

fn main() {
    println!("Extension — whole-body analysis (12 classes, 7 segments, 6 EMG)");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    for limb in [Limb::RightHand, Limb::RightLeg, Limb::WholeBody] {
        let ds = evaluation_dataset(limb);
        let (train, query) = stratified_split(&ds.records, 2);
        for clusters in [15usize, 25] {
            let cfg = PipelineConfig::default()
                .with_clusters(clusters)
                .with_seed(experiment_seed());
            let out = evaluate(&train, &query, limb, &cfg).expect("evaluation succeeds");
            println!(
                "{limb:<11} classes={:<3} c={clusters:<3} misclass {:>6.2}%   kNN-correct {:>6.2}%  ({} queries)",
                kinemyo::biosim::MotionClass::all_for(limb).len(),
                out.misclassification_pct,
                out.knn_correct_pct,
                out.queries
            );
            rows.push(serde_json::json!({
                "limb": limb.to_string(), "clusters": clusters,
                "misclassification_pct": out.misclassification_pct,
                "knn_correct_pct": out.knn_correct_pct,
            }));
        }
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "extension_whole_body",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
