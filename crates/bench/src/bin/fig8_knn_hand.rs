//! Regenerates **Figure 8**: percent of correctly classified right-hand
//! motions among the k = 5 retrieved, vs clusters and window size.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin fig8_knn_hand`.

use kinemyo::biosim::Limb;
use kinemyo::sweep;
use kinemyo_bench::{
    base_config, evaluation_dataset, experiment_seed, print_sweep_json, print_sweep_table, repeats,
    sparkline, sweep_grids,
};

fn main() {
    let limb = Limb::RightHand;
    println!("Figure 8 — kNN (k=5) correctly-classified percent, right hand");
    println!("seed = {}", experiment_seed());
    let dataset = evaluation_dataset(limb);
    println!(
        "dataset: {} records ({} participants x {} trials/class x 6 classes)",
        dataset.len(),
        dataset.spec.participants,
        dataset.spec.trials_per_class
    );
    let (windows, clusters) = sweep_grids();
    let points = sweep(
        &dataset.records,
        limb,
        &windows,
        &clusters,
        &base_config(),
        3,
        repeats(),
    )
    .expect("sweep succeeds");

    print_sweep_table("kNN classified percent (%)", &points, |p| p.knn_correct_pct);
    for &w in &windows {
        let series: Vec<f64> = points
            .iter()
            .filter(|p| p.window_ms == w)
            .map(|p| p.knn_correct_pct)
            .collect();
        println!("window {w:>5.0} ms: {}", sparkline(&series));
    }
    print_sweep_json("fig8", &points);
}
