//! **Ablation: weighted-SVD vs mean-pose motion features.** Eq. 3's
//! weighted right-singular-vector features capture *how* a joint moved in
//! a window; the baseline captures only *where* it was on average. This
//! binary quantifies what the SVD buys.
//!
//! Run with `cargo run --release -p kinemyo-bench --bin ablation_features`.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::stratified_split;
use kinemyo_bench::custom::{evaluate_variant, FeatureKind, VariantConfig};
use kinemyo_bench::experiment_seed;

fn main() {
    println!("Ablation — weighted-SVD features (Eq. 3) vs mean-pose baseline");
    println!("seed = {}\n", experiment_seed());
    let mut rows = Vec::new();
    for limb in [Limb::RightHand, Limb::RightLeg] {
        let spec = match limb {
            Limb::RightHand => DatasetSpec::hand_default(),
            Limb::RightLeg => DatasetSpec::leg_default(),
            Limb::WholeBody => DatasetSpec::whole_body_default(),
        }
        .with_seed(experiment_seed());
        let ds = Dataset::generate(spec).expect("dataset generation succeeds");
        let (train, query) = stratified_split(&ds.records, 2);
        for window_ms in [100.0, 200.0] {
            for (name, kind) in [
                ("wsvd", FeatureKind::Wsvd),
                ("mean-pose", FeatureKind::MeanPose),
            ] {
                let cfg = VariantConfig {
                    window_ms,
                    feature: kind,
                    seed: experiment_seed(),
                    ..VariantConfig::default()
                };
                let (mis, knn_pct) = evaluate_variant(&train, &query, limb, &cfg);
                println!(
                    "{limb:<11} w={window_ms:<5} {name:<10} misclass {mis:>6.2}%   kNN-correct {knn_pct:>6.2}%"
                );
                rows.push(serde_json::json!({
                    "limb": limb.to_string(), "window_ms": window_ms, "feature": name,
                    "misclassification_pct": mis, "knn_correct_pct": knn_pct,
                }));
            }
        }
    }
    println!(
        "\nJSON:{}",
        serde_json::json!({
            "figure": "ablation_features",
            "seed": experiment_seed(),
            "rows": rows,
        })
    );
}
