//! Shared infrastructure for the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every binary regenerates one figure of the paper (see `DESIGN.md` §4
//! for the experiment index) and prints the series it plots as aligned
//! text tables plus machine-readable JSON lines (prefix `JSON:`), so the
//! results in `EXPERIMENTS.md` can be traced to a command.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use kinemyo::{PipelineConfig, SweepPoint};

/// The paper's window-size grid (ms), Sec. 5/6.
pub const PAPER_WINDOWS_MS: [f64; 4] = [50.0, 100.0, 150.0, 200.0];

/// The paper's cluster-count grid, Sec. 6 ("5 to 40"); the figures sample
/// the range at steps of 5.
pub const PAPER_CLUSTERS: [usize; 8] = [5, 10, 15, 20, 25, 30, 35, 40];

/// Returns `true` when `KINEMYO_QUICK=1` — figure binaries then run a
/// reduced grid so smoke tests stay fast.
pub fn quick_mode() -> bool {
    std::env::var("KINEMYO_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Master seed used by all experiments; override with `KINEMYO_SEED`.
pub fn experiment_seed() -> u64 {
    std::env::var("KINEMYO_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2007)
}

/// The standard evaluation dataset for a limb: 3 participants × 8 trials
/// per class (reduced to 2 × 3 in quick mode).
pub fn evaluation_dataset(limb: Limb) -> Dataset {
    let spec = match limb {
        Limb::RightHand => DatasetSpec::hand_default(),
        Limb::RightLeg => DatasetSpec::leg_default(),
        Limb::WholeBody => DatasetSpec::whole_body_default(),
    };
    let spec = if quick_mode() {
        spec.with_size(2, 3)
    } else {
        spec.with_size(3, 8)
    };
    Dataset::generate(spec.with_seed(experiment_seed())).expect("dataset generation succeeds")
}

/// FCM-seed repeats averaged per sweep cell (1 in quick mode).
pub fn repeats() -> usize {
    if quick_mode() {
        1
    } else {
        3
    }
}

/// The sweep grids, reduced in quick mode.
pub fn sweep_grids() -> (Vec<f64>, Vec<usize>) {
    if quick_mode() {
        (vec![100.0, 200.0], vec![5, 15])
    } else {
        (PAPER_WINDOWS_MS.to_vec(), PAPER_CLUSTERS.to_vec())
    }
}

/// Base pipeline config for the sweeps.
pub fn base_config() -> PipelineConfig {
    PipelineConfig::default().with_seed(experiment_seed())
}

/// Prints a sweep as one aligned table per metric selector, with cluster
/// counts as rows and window sizes as columns — directly comparable to the
/// paper's figure axes.
pub fn print_sweep_table(title: &str, points: &[SweepPoint], metric: impl Fn(&SweepPoint) -> f64) {
    let mut windows: Vec<f64> = points.iter().map(|p| p.window_ms).collect();
    windows.sort_by(|a, b| a.total_cmp(b));
    windows.dedup();
    let mut clusters: Vec<usize> = points.iter().map(|p| p.clusters).collect();
    clusters.sort_unstable();
    clusters.dedup();

    println!("\n{title}");
    print!("{:>10}", "clusters");
    for w in &windows {
        print!("{:>12}", format!("{w:.0}ms"));
    }
    println!();
    for &c in &clusters {
        print!("{c:>10}");
        for &w in &windows {
            let v = points
                .iter()
                .find(|p| p.clusters == c && p.window_ms == w)
                .map(&metric)
                .unwrap_or(f64::NAN);
            print!("{v:>12.2}");
        }
        println!();
    }
}

/// Emits the sweep as a machine-readable JSON line for EXPERIMENTS.md
/// tooling.
pub fn print_sweep_json(figure: &str, points: &[SweepPoint]) {
    let json = serde_json::to_string(&serde_json::json!({
        "figure": figure,
        "seed": experiment_seed(),
        "points": points,
    }))
    .expect("sweep serializes");
    println!("JSON:{json}");
}

/// Renders a tiny ASCII sparkline for a series (used to eyeball trends in
/// terminal output).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

pub mod custom;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper() {
        assert_eq!(PAPER_WINDOWS_MS.len(), 4);
        assert_eq!(PAPER_CLUSTERS.first(), Some(&5));
        assert_eq!(PAPER_CLUSTERS.last(), Some(&40));
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn seed_default() {
        // Unless the env var is set in the test environment.
        if std::env::var("KINEMYO_SEED").is_err() {
            assert_eq!(experiment_seed(), 2007);
        }
    }
}
