//! Criterion benchmarks for the end-to-end pipeline: training on a small
//! test bed and classifying one query motion (the paper's Sec. 4 path),
//! plus raw trial synthesis and the EMG conditioning chain.

use criterion::{criterion_group, criterion_main, Criterion};
use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_biosim::acquisition::{process_emg_channel, AcquisitionConfig};
use std::hint::black_box;

fn bench_train(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("train_18_records_c10", |b| {
        b.iter(|| {
            MotionClassifier::train(black_box(&refs), ds.spec.limb, black_box(&config)).unwrap()
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&refs, ds.spec.limb, &config).unwrap();
    let query = &ds.records[7];
    c.bench_function("classify_one_motion", |b| {
        b.iter(|| model.classify_record(black_box(query)).unwrap());
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("biosim");
    group.sample_size(10);
    group.bench_function("generate_one_trial_per_class", |b| {
        b.iter(|| Dataset::generate(DatasetSpec::hand_default().with_size(1, 1)).unwrap());
    });
    group.finish();
}

fn bench_emg_conditioning(c: &mut Criterion) {
    // 10 s of raw 1 kHz EMG through band-pass + rectify + resample.
    let raw: Vec<f64> = (0..10_000)
        .map(|i| ((i as f64) * 0.9).sin() * 1e-3)
        .collect();
    let cfg = AcquisitionConfig::default();
    c.bench_function("emg_conditioning_10s", |b| {
        b.iter(|| process_emg_channel(black_box(&raw), black_box(&cfg)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_train,
    bench_query,
    bench_dataset_generation,
    bench_emg_conditioning
);
criterion_main!(benches);
