//! Criterion benchmarks for the `kinemyo-serve` daemon over real
//! loopback sockets: end-to-end request latency at micro-batch budgets
//! of 1, 8 and 64, so the coalescing win (and its latency cost) is
//! measured, not assumed.
//!
//! Each iteration sends a fixed burst of `classify` requests from a few
//! persistent client connections and waits for every response — the
//! measured quantity is whole round trips through accept → queue →
//! batcher → worker → reply, not serialization in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_serve::{ServeClient, ServeConfig, Server};
use std::time::Duration;

/// Requests per measured burst (split across the client threads).
const BURST: usize = 32;
/// Persistent loopback connections driving the burst.
const CLIENTS: usize = 4;

fn trained_model() -> (MotionClassifier, Vec<MotionRecord>) {
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&refs, ds.spec.limb, &config).unwrap();
    (model, ds.records.clone())
}

fn bench_serve_throughput(c: &mut Criterion) {
    // The bench is meaningless without a live JSON backend (the offline
    // stub build compiles serde_json but cannot encode at runtime).
    if serde_json::to_string(&0u32).is_err() {
        eprintln!("skipping serve_throughput: serde_json stub build");
        return;
    }
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BURST as u64));

    for batch_max in [1usize, 8, 64] {
        let (model, records) = trained_model();
        let config = ServeConfig::default()
            .with_batch_max(batch_max)
            .with_batch_wait(Duration::from_millis(2))
            .with_workers(2)
            .with_queue_capacity(2 * BURST);
        let server = Server::start(model, config).expect("server starts");
        let addr = server.local_addr();

        group.bench_with_input(
            BenchmarkId::new("loopback_burst32", batch_max),
            &batch_max,
            |b, _| {
                b.iter(|| {
                    let per_client = BURST / CLIENTS;
                    std::thread::scope(|scope| {
                        for t in 0..CLIENTS {
                            let records = &records;
                            scope.spawn(move || {
                                let mut client = ServeClient::connect(addr).expect("connect");
                                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                                for i in 0..per_client {
                                    client
                                        .classify(&records[(t + i) % records.len()])
                                        .expect("classify served");
                                }
                            });
                        }
                    });
                });
            },
        );

        server.shutdown();
        let stats = server.wait();
        eprintln!(
            "batch_max={batch_max}: served={} batches={} mean-batch={:.2} p50={}us p99={}us",
            stats.served,
            stats.batches,
            stats.served as f64 / stats.batches.max(1) as f64,
            stats.p50_latency_us,
            stats.p99_latency_us
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
