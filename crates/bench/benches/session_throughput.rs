//! Criterion benchmarks for streaming sessions over real loopback
//! sockets: whole `session_push` round trips through accept → session
//! engine → reply at 1, 16 and 64 concurrent sessions, so the cost of
//! the wire (framing, JSON, per-connection threads) is measured on top
//! of the in-process engine numbers `stream_bench` reports.
//!
//! Each iteration opens its sessions once (outside the timed region the
//! table churn is not what's measured), then every session pushes a
//! fixed burst of replayed frames in protocol-sized chunks and waits for
//! its rolling windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_biosim::replay::{generate_replay, ReplaySpec};
use kinemyo_serve::{
    ReloadPolicy, Response, ServeClient, ServeConfig, Server, SessionConfig, WireFrame,
};
use std::time::Duration;

/// Frames each session pushes per measured iteration.
const FRAMES_PER_SESSION: usize = 96;
/// Frames per `session_push` request (protocol-sized chunks).
const CHUNK: usize = 32;

fn trained_model() -> MotionClassifier {
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    MotionClassifier::train(&refs, ds.spec.limb, &config).unwrap()
}

fn replay_frames() -> Vec<WireFrame> {
    let spec = ReplaySpec::parse("hand:1:4:2007").expect("spec parses");
    let streams = generate_replay(&spec).expect("replay generates");
    let base: Vec<WireFrame> = streams[0]
        .frames
        .iter()
        .map(|f| WireFrame {
            mocap: f.mocap.clone(),
            pelvis: f.pelvis,
            emg: f.emg.clone(),
            t_ms: Some(f.t_ms),
        })
        .collect();
    (0..FRAMES_PER_SESSION)
        .map(|i| base[i % base.len()].clone())
        .collect()
}

fn bench_session_throughput(c: &mut Criterion) {
    // The bench is meaningless without a live JSON backend (the offline
    // stub build compiles serde_json but cannot encode at runtime).
    if serde_json::to_string(&0u32).is_err() {
        eprintln!("skipping session_throughput: serde_json stub build");
        return;
    }
    let mut group = c.benchmark_group("session");
    group.sample_size(10);

    for sessions in [1usize, 16, 64] {
        let config = ServeConfig::default()
            .with_session_config(SessionConfig::default().with_max_sessions(2 * sessions));
        let server = Server::start(trained_model(), config).expect("server starts");
        let addr = server.local_addr();
        let frames = replay_frames();

        group.throughput(Throughput::Elements((sessions * FRAMES_PER_SESSION) as u64));
        group.bench_with_input(
            BenchmarkId::new("loopback_push", sessions),
            &sessions,
            |b, &sessions| {
                // One persistent connection and one open session per
                // concurrent stream; the timed region is pushes only.
                let mut clients: Vec<(ServeClient, u64)> = (0..sessions)
                    .map(|_| {
                        let mut client = ServeClient::connect(addr).expect("connect");
                        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                        let session = client
                            .session_open(ReloadPolicy::Rebind, None)
                            .expect("session opens");
                        (client, session)
                    })
                    .collect();
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for (client, session) in clients.iter_mut() {
                            let frames = &frames;
                            let session = *session;
                            scope.spawn(move || {
                                for chunk in frames.chunks(CHUNK) {
                                    match client
                                        .session_push(session, chunk)
                                        .expect("push transports")
                                    {
                                        Response::SessionWindows { rejected, .. } => {
                                            assert!(rejected.is_empty())
                                        }
                                        other => panic!("push rejected: {other:?}"),
                                    }
                                }
                            });
                        }
                    });
                });
                for (client, session) in clients.iter_mut() {
                    client.session_close(*session).expect("session closes");
                }
            },
        );

        server.shutdown();
        let stats = server.wait();
        eprintln!(
            "sessions={sessions}: frames={} windows={} opened={}",
            stats.sessions.frames, stats.sessions.windows, stats.sessions.opened
        );
    }
    group.finish();
}

criterion_group!(benches, bench_session_throughput);
criterion_main!(benches);
