//! Criterion benchmarks for fuzzy c-means: fit cost vs point count and
//! cluster count (the dominant cost of the Figs. 6–9 sweeps), plus the
//! Eq. 9 membership projection used on every query window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinemyo_fuzzy::{fcm_fit, FcmConfig};
use kinemyo_linalg::Matrix;
use std::hint::black_box;

/// Deterministic blobs in 16-d (the combined hand feature dimension).
fn points(n: usize) -> Matrix {
    Matrix::from_fn(n, 16, |r, c| {
        let blob = (r % 8) as f64;
        blob + ((r * 31 + c * 17) as f64 * 0.61).sin() * 0.3
    })
}

fn bench_fcm_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcm_fit");
    group.sample_size(10);
    for &(n, clusters) in &[(500usize, 10usize), (500, 40), (2000, 10), (2000, 40)] {
        let data = points(n);
        let config = FcmConfig {
            restarts: 1,
            max_iters: 50,
            ..FcmConfig::new(clusters)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_c{clusters}")),
            &(data, config),
            |b, (data, config)| {
                b.iter(|| fcm_fit(black_box(data), black_box(config)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_membership_projection(c: &mut Criterion) {
    let data = points(1000);
    let model = fcm_fit(
        &data,
        &FcmConfig {
            restarts: 1,
            max_iters: 50,
            ..FcmConfig::new(20)
        },
    )
    .unwrap();
    let query: Vec<f64> = (0..16).map(|i| i as f64 * 0.3).collect();
    c.bench_function("membership_projection_c20_d16", |b| {
        b.iter(|| model.memberships_for(black_box(&query)).unwrap());
    });
}

criterion_group!(benches, bench_fcm_fit, bench_membership_projection);
criterion_main!(benches);
