//! Criterion benchmarks for the parallel FCM hot path: the same
//! fig6-scale workload (thousands of 16-d window points, paper-default
//! cluster counts) fitted under different [`ThreadPolicy`] settings.
//!
//! The interesting comparisons:
//!
//! * `fcm_fit_threads/*` — one restart, scaling of the fused
//!   membership/center/objective pass with worker count. The chunked
//!   reduction is deterministic, so every thread count produces the
//!   bit-identical model; only wall-clock changes.
//! * `fcm_restarts_threads/*` — four k-means++ restarts, where the
//!   concurrent-restart scheduler can run whole fits side by side even
//!   when a single pass is too small to split profitably.
//! * `classify_batch_threads/*` — the end-user query path: a trained
//!   classifier answering a visit's worth of queries through
//!   `classify_batch` under each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig, ThreadPolicy};
use kinemyo_fuzzy::{fcm_fit, FcmConfig};
use kinemyo_linalg::Matrix;
use std::hint::black_box;

/// Deterministic blobs in 16-d (the combined hand feature dimension),
/// sized like the paper's Fig. 6 sweep input (~2.4k window points).
fn points(n: usize) -> Matrix {
    Matrix::from_fn(n, 16, |r, c| {
        let blob = (r % 8) as f64;
        blob + ((r * 31 + c * 17) as f64 * 0.61).sin() * 0.3
    })
}

/// Thread policies compared by every group, labelled for report output.
fn policies() -> Vec<(&'static str, ThreadPolicy)> {
    vec![
        ("seq", ThreadPolicy::Sequential),
        ("t2", ThreadPolicy::Fixed(2)),
        ("t4", ThreadPolicy::Fixed(4)),
    ]
}

fn bench_fit_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcm_fit_threads");
    group.sample_size(10);
    let data = points(2400);
    for (label, policy) in policies() {
        let config = FcmConfig {
            restarts: 1,
            max_iters: 50,
            ..FcmConfig::new(20)
        }
        .with_threads(policy);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n2400_c20_{label}")),
            &config,
            |b, config| {
                b.iter(|| fcm_fit(black_box(&data), black_box(config)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_restarts_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcm_restarts_threads");
    group.sample_size(10);
    let data = points(1200);
    for (label, policy) in policies() {
        let config = FcmConfig {
            restarts: 4,
            max_iters: 40,
            ..FcmConfig::new(15)
        }
        .with_threads(policy);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n1200_c15_r4_{label}")),
            &config,
            |b, config| {
                b.iter(|| fcm_fit(black_box(&data), black_box(config)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_classify_batch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_batch_threads");
    group.sample_size(10);
    let dataset = Dataset::generate(DatasetSpec::hand_default().with_size(2, 3)).unwrap();
    let train: Vec<&MotionRecord> = dataset.records.iter().collect();
    let queries: Vec<&MotionRecord> = dataset.records.iter().collect();
    for (label, policy) in policies() {
        let config = PipelineConfig::default()
            .with_clusters(12)
            .with_threads(policy);
        let model = MotionClassifier::train(&train, dataset.spec.limb, &config).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{}_{label}", queries.len())),
            &model,
            |b, model| {
                b.iter(|| model.classify_batch(black_box(&queries)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_threads,
    bench_restarts_threads,
    bench_classify_batch_threads
);
criterion_main!(benches);
