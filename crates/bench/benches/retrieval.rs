//! Criterion benchmarks for the retrieval paths: exact linear kNN,
//! VP-tree, and iDistance over databases of `2c`-length motion vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinemyo_modb::{knn, FeatureDb, IDistance, VpTree};
use std::hint::black_box;

/// Deterministic sparse min/max-style vectors (dim 30 = 2 × 15 clusters).
fn db(n: usize) -> FeatureDb<usize> {
    let mut out = FeatureDb::new(30);
    for i in 0..n {
        let mut v = vec![0.0; 30];
        for j in 0..6 {
            let k = (i * 7 + j * 11) % 15;
            let hi = 0.3 + ((i * 13 + j) % 70) as f64 / 100.0;
            v[2 * k] = hi * 0.6;
            v[2 * k + 1] = hi;
        }
        out.insert(i, i % 12, v).unwrap();
    }
    out
}

fn query(i: usize) -> Vec<f64> {
    (0..30).map(|c| ((i * 3 + c) % 17) as f64 / 17.0).collect()
}

fn bench_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_k5_dim30");
    for &n in &[1_000usize, 10_000] {
        let database = db(n);
        let vp = VpTree::build(&database);
        let idist = IDistance::build(&database, 16).unwrap();
        group.bench_with_input(BenchmarkId::new("linear", n), &database, |b, database| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                knn(black_box(database), black_box(&query(i)), 5).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("vptree", n), &vp, |b, vp| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                vp.knn(black_box(&query(i)), 5).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("idistance", n), &idist, |b, idist| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                idist.knn(black_box(&query(i)), 5).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build_n5000");
    group.sample_size(10);
    let database = db(5_000);
    group.bench_function("vptree", |b| {
        b.iter(|| VpTree::build(black_box(&database)));
    });
    group.bench_function("idistance", |b| {
        b.iter(|| IDistance::build(black_box(&database), 16).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval, bench_index_build);
criterion_main!(benches);
