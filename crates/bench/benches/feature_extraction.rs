//! Criterion benchmarks for the per-window feature kernels (Eq. 1 IAV and
//! Eq. 2–3 weighted SVD) across the paper's window sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kinemyo_features::{iav_features, wsvd_features};
use kinemyo_linalg::Matrix;
use std::hint::black_box;

fn deterministic_signal(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 7 + c * 13) as f64 * 0.37).sin())
}

fn bench_iav(c: &mut Criterion) {
    let mut group = c.benchmark_group("iav_features");
    // 10 s of 4-channel EMG envelope at 120 Hz.
    let emg = deterministic_signal(1200, 4);
    for window in [6usize, 12, 18, 24] {
        let ranges: Vec<(usize, usize)> = (0..1200 / window)
            .map(|i| (i * window, (i + 1) * window))
            .collect();
        group.throughput(Throughput::Elements(1200));
        group.bench_with_input(BenchmarkId::from_parameter(window), &ranges, |b, ranges| {
            b.iter(|| iav_features(black_box(&emg), black_box(ranges)).unwrap());
        });
    }
    group.finish();
}

fn bench_wsvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsvd_features");
    // 10 s of 4-segment (12-column) local motion at 120 Hz.
    let mocap = deterministic_signal(1200, 12);
    for window in [6usize, 12, 18, 24] {
        let ranges: Vec<(usize, usize)> = (0..1200 / window)
            .map(|i| (i * window, (i + 1) * window))
            .collect();
        group.throughput(Throughput::Elements(1200));
        group.bench_with_input(BenchmarkId::from_parameter(window), &ranges, |b, ranges| {
            b.iter(|| wsvd_features(black_box(&mocap), black_box(ranges)).unwrap());
        });
    }
    group.finish();
}

fn bench_svd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_24x3");
    let window = deterministic_signal(24, 3);
    group.bench_function("golub_reinsch", |b| {
        b.iter(|| kinemyo_linalg::svd::svd_golub_reinsch(black_box(&window)).unwrap());
    });
    group.bench_function("jacobi", |b| {
        b.iter(|| kinemyo_linalg::svd::svd_jacobi(black_box(&window)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_iav, bench_wsvd, bench_svd_kernels);
criterion_main!(benches);
