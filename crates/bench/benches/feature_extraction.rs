//! Criterion benchmarks for the per-window feature kernels (Eq. 1 IAV and
//! Eq. 2–3 weighted SVD) across the paper's window sizes, plus the
//! `window_step` group backing the incremental-vs-batch perf contract
//! (DESIGN.md §13): one window step through `WsvdExtractor::push_sample`
//! must stay well ahead of rebuilding the joint matrices and running a
//! full SVD per window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kinemyo_features::{
    iav_windows, weighted_sv_feature, wsvd_windows, WindowedExtractor, WsvdExtractor,
};
use kinemyo_linalg::Matrix;
use std::hint::black_box;

fn deterministic_signal(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 7 + c * 13) as f64 * 0.37).sin())
}

fn bench_iav(c: &mut Criterion) {
    let mut group = c.benchmark_group("iav_windows");
    // 10 s of 4-channel EMG envelope at 120 Hz.
    let emg = deterministic_signal(1200, 4);
    for window in [6usize, 12, 18, 24] {
        let ranges: Vec<(usize, usize)> = (0..1200 / window)
            .map(|i| (i * window, (i + 1) * window))
            .collect();
        group.throughput(Throughput::Elements(1200));
        group.bench_with_input(BenchmarkId::from_parameter(window), &ranges, |b, ranges| {
            b.iter(|| iav_windows(black_box(&emg), black_box(ranges)).unwrap());
        });
    }
    group.finish();
}

fn bench_wsvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsvd_windows");
    // 10 s of 4-segment (12-column) local motion at 120 Hz.
    let mocap = deterministic_signal(1200, 12);
    for window in [6usize, 12, 18, 24] {
        let ranges: Vec<(usize, usize)> = (0..1200 / window)
            .map(|i| (i * window, (i + 1) * window))
            .collect();
        group.throughput(Throughput::Elements(1200));
        group.bench_with_input(BenchmarkId::from_parameter(window), &ranges, |b, ranges| {
            b.iter(|| wsvd_windows(black_box(&mocap), black_box(ranges)).unwrap());
        });
    }
    group.finish();
}

fn bench_svd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_24x3");
    let window = deterministic_signal(24, 3);
    group.bench_function("golub_reinsch", |b| {
        b.iter(|| kinemyo_linalg::svd::svd_golub_reinsch(black_box(&window)).unwrap());
    });
    group.bench_function("jacobi", |b| {
        b.iter(|| kinemyo_linalg::svd::svd_jacobi(black_box(&window)).unwrap());
    });
    group.finish();
}

/// Cost of advancing the WSVD feature stream by one full window, batch vs
/// incremental. The batch arm replicates the pre-incremental hot path:
/// slice each joint's `w×3` matrix out of the frame stream and run a full
/// SVD per joint per window. The incremental arm pushes the same `w`
/// frames through `WsvdExtractor`, which accumulates 3×3 Gram matrices
/// and solves a warm-started eigenproblem only at the window boundary.
fn bench_window_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_step");
    // 4 segments (12 columns), the paper's limb-model shape.
    const JOINTS: usize = 4;
    for window in [24usize, 64, 128] {
        let mocap = deterministic_signal(window, 3 * JOINTS);
        group.throughput(Throughput::Elements(window as u64));
        group.bench_with_input(BenchmarkId::new("batch_svd", window), &mocap, |b, mocap| {
            b.iter(|| {
                let mut features = [[0.0f64; 3]; JOINTS];
                for (j, f) in features.iter_mut().enumerate() {
                    let joint = Matrix::from_fn(mocap.rows(), 3, |r, c| mocap[(r, 3 * j + c)]);
                    *f = weighted_sv_feature(black_box(&joint)).unwrap();
                }
                features
            });
        });
        group.bench_with_input(
            BenchmarkId::new("incremental", window),
            &mocap,
            |b, mocap| {
                let mut extractor = WsvdExtractor::new(3 * JOINTS, window).unwrap();
                b.iter(|| {
                    // Each iteration feeds exactly one window, so the
                    // boundary eigensolve fires once per measured step and
                    // the warm seed carries across iterations as it would
                    // across live windows.
                    let mut out = None;
                    for r in 0..mocap.rows() {
                        out = extractor.push_sample(black_box(mocap.row(r))).unwrap();
                    }
                    out.expect("window boundary reached")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_iav,
    bench_wsvd,
    bench_svd_kernels,
    bench_window_step
);
criterion_main!(benches);
