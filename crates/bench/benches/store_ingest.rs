//! Criterion benchmarks for the durable motion store: WAL-append
//! throughput with and without fsync-on-commit, snapshot writing, and
//! cold recovery (snapshot + WAL replay) time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kinemyo_store::{DurableDb, MetaCodec, StoreConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const DIM: usize = 30;

/// Minimal 8-byte metadata so the bench isolates the storage layer from
/// the pipeline's richer `RecordMeta`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tag(u64);

impl MetaCodec for Tag {
    fn encode_meta(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(Tag(u64::from_le_bytes(arr)))
    }
}

fn vector(i: usize) -> Vec<f64> {
    (0..DIM).map(|c| ((i * 3 + c) % 17) as f64 / 17.0).collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "kinemyo_bench_store_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_append_dim30");
    for &fsync in &[false, true] {
        let dir = fresh_dir(if fsync { "fsync" } else { "nosync" });
        let config = StoreConfig {
            fsync_on_commit: fsync,
            ..StoreConfig::default()
        };
        let store = DurableDb::<Tag>::create(&dir, DIM, config).unwrap();
        group.bench_with_input(
            BenchmarkId::new("append", if fsync { "fsync" } else { "nosync" }),
            &store,
            |b, store| {
                b.iter(|| {
                    let id = store.next_id();
                    store
                        .insert(id, Tag(id as u64), black_box(vector(id)))
                        .unwrap()
                });
            },
        );
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_snapshot_and_recovery(c: &mut Criterion) {
    const ENTRIES: usize = 2_000;
    let dir = fresh_dir("recover");
    let config = StoreConfig {
        fsync_on_commit: false,
        ..StoreConfig::default()
    };
    let store = DurableDb::<Tag>::create(&dir, DIM, config.clone()).unwrap();
    for i in 0..ENTRIES {
        store.insert(i, Tag(i as u64), vector(i)).unwrap();
    }

    let mut group = c.benchmark_group("store_n2000_dim30");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| store.persist().unwrap());
    });
    drop(store);
    group.bench_function("recover", |b| {
        b.iter(|| {
            let reopened = DurableDb::<Tag>::open(&dir, config.clone()).unwrap();
            assert_eq!(black_box(&reopened).len(), ENTRIES);
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_append, bench_snapshot_and_recovery);
criterion_main!(benches);
