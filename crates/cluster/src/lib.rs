//! # kinemyo-cluster
//!
//! Replication, failover, and sharded serving for the kinemyo motion
//! database — turning the single-node durable daemon into a small
//! cluster that keeps answering classification queries while nodes die.
//!
//! * [`wire`] — the replication wire protocol: the store's KWAL v1
//!   frame layout reused verbatim over TCP, with an incremental parser
//!   that keeps *incomplete*, *corrupt-but-framed*, and *desynced*
//!   streams distinct;
//! * [`log`] — the in-memory, sequence-idempotent log the leader
//!   streams from, fed by the durable store's commit hook;
//! * [`node`] — [`ClusterNode`]: leader streaming, follower catch-up
//!   (snapshot + WAL tail via the store's own recovery, then live
//!   entries), acks, in-stream re-requests on torn or corrupt frames,
//!   and coordinator-free promotion of the most caught-up follower;
//! * [`router`] — [`Router`] / [`RouterServer`]: scatter-gather over
//!   disjoint shards with per-shard deadline budgets, jittered retries,
//!   and typed degradation via
//!   [`ClusterHealth`](kinemyo::cluster::ClusterHealth);
//! * [`proxy`] — [`FaultProxy`]: a deterministic in-process fault
//!   injector (cut / corrupt / delay / duplicate) for exercising every
//!   failure path in tests.
//!
//! The replication protocol and promotion rules are specified in
//! DESIGN.md §14.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod log;
pub mod node;
pub mod proxy;
pub mod router;
pub mod wire;

pub use error::{ClusterError, Result};
pub use log::ReplicationLog;
pub use node::{poll_status, ClusterNode, NodeConfig};
pub use proxy::{FaultProxy, LinkFaultSpec};
pub use router::{Router, RouterConfig, RouterServer};
pub use wire::{encode_msg, write_msg, MsgBuf, ReplMsg, MAX_WIRE_FRAME_BYTES};
