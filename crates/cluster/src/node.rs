//! Replication nodes: leader streaming, follower catch-up, and
//! leaderless promotion.
//!
//! Topology is pull-based: followers dial the leader's replication
//! address, announce how far they have applied ([`ReplMsg::Hello`]),
//! and the leader streams every later WAL entry followed by heartbeats
//! while idle. There is no external coordinator — when a follower hears
//! nothing for an election timeout it polls every configured peer's
//! status and the most caught-up reachable node (ties broken by lowest
//! node id) promotes itself; the rest re-point at the winner.
//!
//! Applying a shipped entry goes through the follower's own
//! [`DurableDb::insert`], so the entry is re-logged locally with the
//! same 1-based commit sequence the leader assigned — replicas are
//! bit-identical on disk, and a promoted follower can immediately serve
//! and stream to others from its own log.

use crate::error::{ClusterError, Result};
use crate::log::ReplicationLog;
use crate::wire::{write_msg, MsgBuf, ReplMsg};
use kinemyo::pipeline::RecordMeta;
use kinemyo_serve::{RetryPolicy, Role, Server};
use kinemyo_store::record::decode_entry;
use kinemyo_store::DurableDb;
use parking_lot::Mutex;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static identity and timing of one replication node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Unique id of this node; the promotion tie-breaker (lower wins).
    pub node_id: u64,
    /// Address the replication listener binds (`127.0.0.1:0` for an
    /// ephemeral port).
    pub repl_addr: String,
    /// Replication addresses of every *other* node in the cluster,
    /// polled during elections.
    pub peers: Vec<String>,
    /// Replication address of the initial leader. `None` makes this
    /// node start as the leader.
    pub leader: Option<String>,
    /// How often the leader emits [`ReplMsg::Heartbeat`] on idle
    /// streams.
    pub heartbeat: Duration,
    /// Silence threshold after which a follower declares the leader
    /// dead and starts an election. Must exceed `heartbeat`.
    pub election_timeout: Duration,
    /// Backoff schedule for dialing the leader.
    pub retry: RetryPolicy,
}

impl NodeConfig {
    /// A follower config with test-friendly timing.
    pub fn new(node_id: u64, repl_addr: impl Into<String>) -> Self {
        Self {
            node_id,
            repl_addr: repl_addr.into(),
            peers: Vec::new(),
            leader: None,
            heartbeat: Duration::from_millis(100),
            election_timeout: Duration::from_millis(500),
            retry: RetryPolicy::default()
                .with_base(Duration::from_millis(20))
                .with_cap(Duration::from_millis(200))
                .with_max_attempts(4)
                .with_seed(node_id ^ 0xC1A5_7E12),
        }
    }

    /// Sets the peer replication addresses.
    pub fn with_peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Points this node at an initial leader (making it a follower).
    pub fn with_leader(mut self, leader: impl Into<String>) -> Self {
        self.leader = Some(leader.into());
        self
    }

    /// Overrides the heartbeat interval.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Overrides the election timeout.
    pub fn with_election_timeout(mut self, timeout: Duration) -> Self {
        self.election_timeout = timeout;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.heartbeat.is_zero() {
            return Err(ClusterError::Config {
                reason: "heartbeat must be non-zero".into(),
            });
        }
        if self.election_timeout <= self.heartbeat {
            return Err(ClusterError::Config {
                reason: format!(
                    "election timeout {:?} must exceed heartbeat {:?}",
                    self.election_timeout, self.heartbeat
                ),
            });
        }
        Ok(())
    }
}

fn role_code(role: Role) -> u8 {
    match role {
        Role::Single => 0,
        Role::Leader => 1,
        Role::Follower => 2,
        Role::Router => 3,
    }
}

struct NodeShared {
    config: NodeConfig,
    server: Arc<Server>,
    store: Arc<DurableDb<RecordMeta>>,
    log: Arc<ReplicationLog>,
    repl_addr: String,
    epoch: AtomicU64,
    shutdown: AtomicBool,
    /// Where the current leader replicates from, as last observed.
    leader_repl: Mutex<Option<String>>,
}

impl NodeShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn status_reply(&self) -> ReplMsg {
        ReplMsg::StatusReply {
            node_id: self.config.node_id,
            role: role_code(self.server.role()),
            epoch: self.epoch.load(Ordering::Acquire),
            applied_seq: self.store.entry_seq(),
            serve_addr: self.server.local_addr().to_string(),
            repl_addr: self.repl_addr.clone(),
        }
    }
}

/// A running replication node bound to one serve daemon.
pub struct ClusterNode {
    shared: Arc<NodeShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ClusterNode {
    /// Starts replication for `server`. The server must own a durable
    /// store ([`ClusterError::NoStore`] otherwise). With
    /// `config.leader == None` the node assumes leadership at epoch 1;
    /// otherwise it follows, catching up from its own applied sequence.
    pub fn start(server: Arc<Server>, config: NodeConfig) -> Result<Self> {
        config.validate()?;
        let store = server.store().ok_or(ClusterError::NoStore { dir: None })?;
        let log = Arc::new(ReplicationLog::new());

        // Install the commit hook BEFORE seeding history: appends are
        // idempotent by sequence, so whichever side records an entry
        // first wins and the other is a no-op.
        let hook_log = Arc::clone(&log);
        store.set_commit_hook(Some(Box::new(move |seq, payload| {
            hook_log.append(seq, payload);
        })));
        for (seq, payload) in store.encoded_entries_from(0) {
            log.append(seq, &payload);
        }

        let listener = TcpListener::bind(&config.repl_addr)?;
        let repl_addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;

        let initial_leader = config.leader.clone();
        let shared = Arc::new(NodeShared {
            config,
            server,
            store,
            log,
            repl_addr,
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            leader_repl: Mutex::new(initial_leader.clone()),
        });

        let mut threads = Vec::new();
        let acceptor = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("repl-listen-{}", shared.config.node_id))
                .spawn(move || accept_loop(acceptor, listener))
                .expect("spawn replication listener"),
        );

        match initial_leader {
            None => {
                shared.epoch.store(1, Ordering::Release);
                shared.server.set_role(Role::Leader, None);
            }
            Some(leader) => {
                shared.server.set_role(Role::Follower, None);
                let follower = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("repl-follow-{}", shared.config.node_id))
                        .spawn(move || follower_loop(follower, leader))
                        .expect("spawn replication follower"),
                );
            }
        }

        Ok(Self { shared, threads })
    }

    /// The bound replication address (resolved if an ephemeral port was
    /// requested).
    pub fn repl_addr(&self) -> &str {
        &self.shared.repl_addr
    }

    /// This node's current role, as reported by its serve daemon.
    pub fn role(&self) -> Role {
        self.shared.server.role()
    }

    /// This node's current election epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Highest WAL sequence applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.shared.store.entry_seq()
    }

    /// Blocks until the node reports `role`, or the deadline passes.
    /// Returns whether the role was reached.
    pub fn wait_for_role(&self, role: Role, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.role() == role {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.role() == role
    }

    /// Blocks until the local store has applied at least `seq`, or the
    /// deadline passes. Returns whether the sequence was reached.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.applied_seq() >= seq {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.applied_seq() >= seq
    }

    /// Stops replication threads and detaches the commit hook. The
    /// serve daemon itself keeps running.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.store.set_commit_hook(None);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Queries `addr` for its status with short dial/read deadlines.
/// Returns `None` when the peer is unreachable or silent.
pub fn poll_status(addr: &str, timeout: Duration) -> Option<ReplMsg> {
    let sock_addr = addr.to_socket_addrs().ok()?.next()?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_nodelay(true).ok()?;
    write_msg(&mut stream, &ReplMsg::Status).ok()?;
    let mut buf = MsgBuf::new();
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        match buf.fill_from(&mut stream) {
            Ok(0) => return None,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return None
            }
            Err(_) => return None,
        }
        match buf.next_msg() {
            Ok(Some(reply @ ReplMsg::StatusReply { .. })) => return Some(reply),
            Ok(Some(_)) | Err(_) => return None,
            Ok(None) => {}
        }
    }
    None
}

fn accept_loop(shared: Arc<NodeShared>, listener: TcpListener) {
    loop {
        if shared.is_shutdown() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_peer(conn, stream);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Handles one inbound peer connection: status queries from anyone,
/// replication streams only while this node leads.
fn serve_peer(shared: Arc<NodeShared>, mut stream: TcpStream) -> Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.heartbeat.min(Duration::from_millis(50))))?;
    let mut buf = MsgBuf::new();
    loop {
        if shared.is_shutdown() {
            return Ok(());
        }
        match buf.fill_from(&mut stream) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) => return Err(e.into()),
        }
        loop {
            match buf.next_msg() {
                Ok(None) => break,
                Ok(Some(ReplMsg::Status)) => {
                    write_msg(&mut stream, &shared.status_reply())?;
                }
                Ok(Some(ReplMsg::Hello { have_seq, .. })) => {
                    if shared.server.role() == Role::Leader {
                        return stream_entries(&shared, stream, buf, have_seq);
                    }
                    // Not the leader: answer with status (carrying our
                    // known role) and let the peer re-discover.
                    write_msg(&mut stream, &shared.status_reply())?;
                    return Ok(());
                }
                // Inbound corruption on the control direction: drop the
                // bad frame and keep reading.
                Err(ClusterError::CorruptFrame { .. }) => {}
                Ok(Some(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Leader side of one replication stream: ships every log entry after
/// the follower's applied sequence, interleaving heartbeats, acks, and
/// rewind requests.
fn stream_entries(
    shared: &Arc<NodeShared>,
    mut stream: TcpStream,
    mut buf: MsgBuf,
    have_seq: u64,
) -> Result<()> {
    let epoch = shared.epoch.load(Ordering::Acquire);
    write_msg(
        &mut stream,
        &ReplMsg::Welcome {
            epoch,
            dim: shared.store.dim() as u32,
            commit_seq: shared.log.head(),
            serve_addr: shared.server.local_addr().to_string(),
        },
    )?;
    let mut next = have_seq + 1;
    let mut last_heartbeat = Instant::now();
    loop {
        if shared.is_shutdown() || shared.server.role() != Role::Leader {
            return Ok(());
        }
        // Drain follower traffic without blocking the stream for long
        // (the socket read timeout is a fraction of the heartbeat).
        match buf.fill_from(&mut stream) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e.into()),
        }
        loop {
            match buf.next_msg() {
                Ok(None) => break,
                Ok(Some(ReplMsg::Ack { .. })) => {}
                Ok(Some(ReplMsg::ReRequest { from_seq })) => next = next.min(from_seq),
                Ok(Some(ReplMsg::Status)) => write_msg(&mut stream, &shared.status_reply())?,
                Err(ClusterError::CorruptFrame { .. }) => {}
                Ok(Some(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let pending = shared.log.get_from(next);
        if pending.is_empty() {
            shared
                .log
                .wait_beyond(next.saturating_sub(1), shared.config.heartbeat);
            if last_heartbeat.elapsed() >= shared.config.heartbeat {
                write_msg(
                    &mut stream,
                    &ReplMsg::Heartbeat {
                        epoch: shared.epoch.load(Ordering::Acquire),
                        commit_seq: shared.log.head(),
                    },
                )?;
                last_heartbeat = Instant::now();
            }
            continue;
        }
        for (seq, payload) in pending {
            write_msg(
                &mut stream,
                &ReplMsg::Entry {
                    seq,
                    payload: payload.as_ref().clone(),
                },
            )?;
            next = next.max(seq + 1);
        }
        last_heartbeat = Instant::now();
    }
}

enum FollowEnd {
    /// Connection refused / lost / silent past the election timeout.
    LeaderGone,
    /// The dialed peer answered but is not the leader.
    NotLeader,
    /// Node is shutting down.
    Shutdown,
}

/// Sleeps `total` in short slices, returning early on shutdown.
fn sleep_interruptibly(shared: &Arc<NodeShared>, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.is_shutdown() {
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn follower_loop(shared: Arc<NodeShared>, initial_leader: String) {
    let mut leader = initial_leader;
    loop {
        if shared.is_shutdown() {
            return;
        }
        match follow(&shared, &leader) {
            FollowEnd::Shutdown => return,
            FollowEnd::LeaderGone | FollowEnd::NotLeader => {}
        }
        // Leader contact lost: elect until we win or find the winner.
        // Entry is staggered by node id so that on an exact tie the
        // lowest id polls (and promotes) first, and higher ids find an
        // established leader instead of racing it. Status replies come
        // from the accept loop, so sleeping here never blocks a peer's
        // poll of this node.
        sleep_interruptibly(
            &shared,
            shared.config.heartbeat * shared.config.node_id.min(16) as u32,
        );
        loop {
            if shared.is_shutdown() {
                return;
            }
            match run_election(&shared) {
                Election::Won => {
                    let epoch = shared.epoch.load(Ordering::Acquire);
                    shared.epoch.store(epoch + 1, Ordering::Release);
                    shared.server.set_role(Role::Leader, None);
                    *shared.leader_repl.lock() = None;
                    return;
                }
                Election::Follow(addr) => {
                    *shared.leader_repl.lock() = Some(addr.clone());
                    leader = addr;
                    break;
                }
                Election::Undecided => {
                    std::thread::sleep(shared.config.heartbeat);
                }
            }
        }
    }
}

/// Follower side of the replication stream. Applies entries in strict
/// sequence order through the local durable store, acking each one;
/// duplicates are skipped, gaps and corrupt frames trigger an in-stream
/// rewind request, and desync or silence ends the session.
fn follow(shared: &Arc<NodeShared>, leader: &str) -> FollowEnd {
    let mut schedule = shared.config.retry.schedule();
    let stream = loop {
        if shared.is_shutdown() {
            return FollowEnd::Shutdown;
        }
        match TcpStream::connect(leader) {
            Ok(s) => break s,
            Err(_) => match schedule.next_delay() {
                Some(delay) => std::thread::sleep(delay),
                None => return FollowEnd::LeaderGone,
            },
        }
    };
    let mut stream = stream;
    if stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(shared.config.heartbeat.min(Duration::from_millis(50))))
            .is_err()
    {
        return FollowEnd::LeaderGone;
    }
    if write_msg(
        &mut stream,
        &ReplMsg::Hello {
            node_id: shared.config.node_id,
            have_seq: shared.store.entry_seq(),
        },
    )
    .is_err()
    {
        return FollowEnd::LeaderGone;
    }

    let mut buf = MsgBuf::new();
    let mut last_contact = Instant::now();
    loop {
        if shared.is_shutdown() {
            return FollowEnd::Shutdown;
        }
        match buf.fill_from(&mut stream) {
            Ok(0) => return FollowEnd::LeaderGone,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_contact.elapsed() >= shared.config.election_timeout {
                    return FollowEnd::LeaderGone;
                }
                continue;
            }
            Err(_) => return FollowEnd::LeaderGone,
        }
        loop {
            match buf.next_msg() {
                Ok(None) => break,
                Ok(Some(msg)) => {
                    last_contact = Instant::now();
                    match apply_leader_msg(shared, &mut stream, msg) {
                        Ok(true) => {}
                        Ok(false) => return FollowEnd::NotLeader,
                        Err(_) => return FollowEnd::LeaderGone,
                    }
                }
                Err(ClusterError::CorruptFrame { .. }) => {
                    // Framing held but the payload was mangled: rewind
                    // the stream to the next sequence we need.
                    last_contact = Instant::now();
                    let from_seq = shared.store.entry_seq() + 1;
                    if write_msg(&mut stream, &ReplMsg::ReRequest { from_seq }).is_err() {
                        return FollowEnd::LeaderGone;
                    }
                }
                Err(_) => return FollowEnd::LeaderGone,
            }
        }
    }
}

/// Applies one leader message. Returns `Ok(false)` when the peer turned
/// out not to be the leader.
fn apply_leader_msg(
    shared: &Arc<NodeShared>,
    stream: &mut TcpStream,
    msg: ReplMsg,
) -> Result<bool> {
    match msg {
        ReplMsg::Welcome {
            epoch,
            dim,
            serve_addr,
            ..
        } => {
            if dim as usize != shared.store.dim() {
                return Err(ClusterError::Protocol {
                    reason: format!(
                        "leader replicates dim {} but local store is dim {}",
                        dim,
                        shared.store.dim()
                    ),
                });
            }
            let seen = shared.epoch.load(Ordering::Acquire);
            shared.epoch.store(seen.max(epoch), Ordering::Release);
            shared.server.set_role(Role::Follower, Some(serve_addr));
        }
        ReplMsg::Entry { seq, payload } => {
            let applied = shared.store.entry_seq();
            if seq <= applied {
                // Duplicate delivery (rewind overlap): already applied.
            } else if seq == applied + 1 {
                let entry = decode_entry::<RecordMeta>(&payload, Path::new("repl-stream"), 0)
                    .map_err(|e| ClusterError::CorruptFrame {
                        reason: format!("undecodable entry payload at seq {seq}: {e}"),
                    })?;
                shared.store.insert(entry.id, entry.meta, entry.vector)?;
                write_msg(stream, &ReplMsg::Ack { seq })?;
            } else {
                // Gap: ask the leader to rewind.
                write_msg(
                    stream,
                    &ReplMsg::ReRequest {
                        from_seq: applied + 1,
                    },
                )?;
            }
        }
        ReplMsg::Heartbeat { epoch, commit_seq } => {
            let seen = shared.epoch.load(Ordering::Acquire);
            shared.epoch.store(seen.max(epoch), Ordering::Release);
            let applied = shared.store.entry_seq();
            if commit_seq > applied {
                // Leader is ahead but silent on entries; nudge it.
                write_msg(
                    stream,
                    &ReplMsg::ReRequest {
                        from_seq: applied + 1,
                    },
                )?;
            }
        }
        ReplMsg::StatusReply { .. } => return Ok(false),
        _ => {}
    }
    Ok(true)
}

enum Election {
    Won,
    Follow(String),
    Undecided,
}

/// One election round: poll every peer's status. An existing leader
/// wins outright; otherwise the most caught-up reachable node takes
/// over, ties broken by lowest node id. Unreachable peers are treated
/// as dead for this round.
fn run_election(shared: &Arc<NodeShared>) -> Election {
    // Polls use the election timeout, not the heartbeat: on a loaded
    // box a live peer can take longer than a heartbeat to answer, and
    // mistaking it for dead here is what produces split leaders.
    let poll_timeout = shared.config.election_timeout;
    let mut best = (shared.store.entry_seq(), shared.config.node_id);
    let mut max_epoch = shared.epoch.load(Ordering::Acquire);
    for peer in &shared.config.peers {
        let Some(ReplMsg::StatusReply {
            node_id,
            role,
            epoch,
            applied_seq,
            repl_addr,
            ..
        }) = poll_status(peer, poll_timeout)
        else {
            continue;
        };
        max_epoch = max_epoch.max(epoch);
        if role == role_code(Role::Leader) {
            return Election::Follow(repl_addr);
        }
        // Higher applied wins; on a tie the lower node id wins.
        if applied_seq > best.0 || (applied_seq == best.0 && node_id < best.1) {
            best = (applied_seq, node_id);
        }
    }
    if best.1 == shared.config.node_id {
        shared.epoch.store(max_epoch, Ordering::Release);
        Election::Won
    } else {
        Election::Undecided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_degenerate_timing() {
        let ok = NodeConfig::new(1, "127.0.0.1:0");
        assert!(ok.validate().is_ok());
        let bad = NodeConfig::new(1, "127.0.0.1:0").with_heartbeat(Duration::ZERO);
        assert!(matches!(bad.validate(), Err(ClusterError::Config { .. })));
        let inverted = NodeConfig::new(1, "127.0.0.1:0")
            .with_heartbeat(Duration::from_millis(500))
            .with_election_timeout(Duration::from_millis(100));
        assert!(matches!(
            inverted.validate(),
            Err(ClusterError::Config { .. })
        ));
    }

    #[test]
    fn role_codes_match_the_wire_contract() {
        assert_eq!(role_code(Role::Single), 0);
        assert_eq!(role_code(Role::Leader), 1);
        assert_eq!(role_code(Role::Follower), 2);
        assert_eq!(role_code(Role::Router), 3);
    }

    #[test]
    fn poll_status_times_out_cleanly_on_a_dead_address() {
        // A bound-then-dropped listener leaves a port nobody answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        assert!(poll_status(&addr, Duration::from_millis(50)).is_none());
    }
}
