//! Typed failures of the cluster layer.

use std::path::PathBuf;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Everything that can go wrong in replication, failover, or routing.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket-level failure on a replication link.
    Io(std::io::Error),
    /// A replication frame arrived intact but its payload checksum did
    /// not verify — the in-stream re-request path, not a dead link.
    CorruptFrame {
        /// What failed to validate.
        reason: String,
    },
    /// The byte stream can no longer be framed (oversized length prefix,
    /// truncated header); the only recovery is a reconnect.
    Desynced {
        /// What broke the framing.
        reason: String,
    },
    /// The peer spoke the protocol wrong (bad handshake, unknown message
    /// tag, field out of range).
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// The peer refused the handshake because it is not the leader.
    NotLeader {
        /// Where the peer believes the leader is (replication address).
        leader_hint: Option<String>,
    },
    /// The durable store refused an operation.
    Store(kinemyo_store::StoreError),
    /// The serve layer refused an operation.
    Serve(kinemyo_serve::ServeError),
    /// Invalid cluster configuration.
    Config {
        /// The violated constraint.
        reason: String,
    },
    /// A node was asked to replicate without a durable store.
    NoStore {
        /// The serve daemon's store directory requirement.
        dir: Option<PathBuf>,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "replication socket error: {e}"),
            ClusterError::CorruptFrame { reason } => {
                write!(f, "corrupt replication frame: {reason}")
            }
            ClusterError::Desynced { reason } => {
                write!(f, "replication stream desynced: {reason}")
            }
            ClusterError::Protocol { reason } => {
                write!(f, "replication protocol error: {reason}")
            }
            ClusterError::NotLeader { leader_hint } => match leader_hint {
                Some(hint) => write!(f, "peer is not the leader (try {hint})"),
                None => write!(f, "peer is not the leader"),
            },
            ClusterError::Store(e) => write!(f, "store error: {e}"),
            ClusterError::Serve(e) => write!(f, "serve error: {e}"),
            ClusterError::Config { reason } => write!(f, "invalid cluster config: {reason}"),
            ClusterError::NoStore { dir } => match dir {
                Some(d) => write!(
                    f,
                    "node has no durable store (expected one at {})",
                    d.display()
                ),
                None => write!(
                    f,
                    "node has no durable store (start serve with a store dir)"
                ),
            },
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Store(e) => Some(e),
            ClusterError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

impl From<kinemyo_store::StoreError> for ClusterError {
    fn from(e: kinemyo_store::StoreError) -> Self {
        ClusterError::Store(e)
    }
}

impl From<kinemyo_serve::ServeError> for ClusterError {
    fn from(e: kinemyo_serve::ServeError) -> Self {
        ClusterError::Serve(e)
    }
}
