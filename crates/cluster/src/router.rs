//! Sharded scatter-gather serving with graceful degradation.
//!
//! A [`Router`] owns no model and no data — it fans a query out to one
//! replica of every shard under a per-shard deadline budget, retries on
//! surviving replicas with the serve layer's capped-and-jittered
//! backoff, and merges whatever comes back. Because every shard runs
//! the same trained model (the same FCM feature space) over a disjoint
//! slice of the motion database, merging is exact: deduplicate
//! neighbours by id, re-sort by `(distance, id)` with a total order,
//! truncate to `k`, and majority-vote — when every shard answers, the
//! result is bit-identical to a single node holding the whole database.
//!
//! Degradation is honest rather than silent: every response carries a
//! [`ClusterHealth`] section naming which shards answered, which
//! refused, and which were dead, so a partial answer is typed as
//! partial instead of masquerading as complete.

use crate::error::{ClusterError, Result};
use kinemyo::cluster::{ClusterHealth, ShardHealth, ShardStatus};
use kinemyo::pipeline::{Classification, RecordMeta};
use kinemyo_biosim::MotionRecord;
use kinemyo_modb::Neighbor;
use kinemyo_serve::{
    decode_frame, write_frame, BatchItem, CallOutcome, Request, Response, RetryPolicy, Role,
    ServeClient,
};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard topology and query budgets for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Serve addresses per shard: `shards[i]` lists the replicas that
    /// can answer for shard `i`, tried in order.
    pub shards: Vec<Vec<String>>,
    /// Wall-clock budget for one shard's answer, connection attempts
    /// and retries included.
    pub shard_deadline: Duration,
    /// Backoff between retry sweeps over a shard's replicas. The seed
    /// is decorrelated per shard (`seed ^ shard index`).
    pub retry: RetryPolicy,
    /// Number of neighbours the merged answer keeps (the global `k`).
    pub knn_k: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: Vec::new(),
            shard_deadline: Duration::from_secs(2),
            retry: RetryPolicy::default()
                .with_base(Duration::from_millis(10))
                .with_cap(Duration::from_millis(100))
                .with_max_attempts(3),
            knn_k: 5,
        }
    }
}

impl RouterConfig {
    /// Sets the shard replica lists.
    pub fn with_shards(mut self, shards: Vec<Vec<String>>) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard deadline budget.
    pub fn with_shard_deadline(mut self, deadline: Duration) -> Self {
        self.shard_deadline = deadline;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the merged neighbour count.
    pub fn with_knn_k(mut self, k: usize) -> Self {
        self.knn_k = k;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.shards.is_empty() {
            return Err(ClusterError::Config {
                reason: "router needs at least one shard".into(),
            });
        }
        if let Some(i) = self.shards.iter().position(Vec::is_empty) {
            return Err(ClusterError::Config {
                reason: format!("shard {i} has no replicas"),
            });
        }
        if self.knn_k == 0 {
            return Err(ClusterError::Config {
                reason: "knn_k must be at least 1".into(),
            });
        }
        if self.shard_deadline.is_zero() {
            return Err(ClusterError::Config {
                reason: "shard deadline must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// What one shard produced for one request.
enum ShardAnswer<T> {
    Value(T),
    Refused(String),
}

/// Scatter-gather query engine over a fixed shard topology.
pub struct Router {
    config: RouterConfig,
}

impl Router {
    /// Builds a router after validating the topology.
    pub fn new(config: RouterConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Classifies one record across every shard. Returns the merged
    /// classification (when at least one shard answered) and the
    /// cluster health naming every shard's outcome.
    pub fn classify(&self, record: &MotionRecord) -> (Option<Classification>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.classify(record) {
            Ok(result) => Ok(ShardAnswer::Value(result)),
            Err(outcome) => Err(outcome),
        });
        let mut answered: Vec<Classification> = Vec::new();
        let mut shards = Vec::with_capacity(outcomes.len());
        for (health, value) in outcomes {
            if let Some(result) = value {
                answered.push(result);
            }
            shards.push(health);
        }
        let merged = self.merge_classifications(answered);
        (merged, ClusterHealth::from_shards(shards))
    }

    /// Classifies a batch across every shard, merging per item. An item
    /// classified by any shard merges the answering shards' neighbours;
    /// items no shard could serve keep a typed failure.
    pub fn classify_batch(&self, records: &[MotionRecord]) -> (Vec<BatchItem>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.classify_batch(records) {
            Ok(items) => Ok(ShardAnswer::Value(items)),
            Err(outcome) => Err(outcome),
        });
        let mut per_shard: Vec<Vec<BatchItem>> = Vec::new();
        let mut shards = Vec::with_capacity(outcomes.len());
        for (health, value) in outcomes {
            if let Some(items) = value {
                per_shard.push(items);
            }
            shards.push(health);
        }
        let mut merged = Vec::with_capacity(records.len());
        for i in 0..records.len() {
            merged.push(self.merge_batch_item(&per_shard, i));
        }
        (merged, ClusterHealth::from_shards(shards))
    }

    /// Polls shard health: sums motion counts over answering shards and
    /// reports the topology's worst-case visibility via `ClusterHealth`.
    pub fn health(&self) -> (Option<Response>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.health() {
            Ok(response @ Response::Health { .. }) => Ok(ShardAnswer::Value(response)),
            Ok(other) => Ok(ShardAnswer::Refused(format!("unexpected reply {other:?}"))),
            Err(e) => Err(CallOutcome::Transport(e)),
        });
        let mut shards = Vec::with_capacity(outcomes.len());
        let mut total_motions = 0usize;
        let mut newest_generation = 0u64;
        let mut limb = None;
        let mut index = None;
        let mut uptime = 0u64;
        let mut any = false;
        for (health, value) in outcomes {
            if let Some(Response::Health {
                model_generation,
                motions,
                limb: shard_limb,
                uptime_ms,
                index: shard_index,
                ..
            }) = value
            {
                any = true;
                total_motions += motions;
                newest_generation = newest_generation.max(model_generation);
                limb.get_or_insert(shard_limb);
                index.get_or_insert(shard_index);
                uptime = uptime.max(uptime_ms);
            }
            shards.push(health);
        }
        let response = match (any, limb) {
            (true, Some(limb)) => Some(Response::Health {
                model_generation: newest_generation,
                motions: total_motions,
                limb,
                uptime_ms: uptime,
                role: Role::Router,
                // Like `limb`: the first answering shard's backend stands
                // in for the topology (heterogeneous only mid-rollout).
                index: index.unwrap_or_default(),
            }),
            _ => None,
        };
        (response, ClusterHealth::from_shards(shards))
    }

    /// Fans `op` out to every shard on its own thread, each with its
    /// own deadline budget and replica retry sweep.
    fn scatter<T, F>(&self, op: F) -> Vec<(ShardHealth, Option<T>)>
    where
        T: Send,
        F: Fn(&mut ServeClient) -> std::result::Result<ShardAnswer<T>, CallOutcome> + Sync,
    {
        let op = &op;
        let mut outcomes: Vec<(ShardHealth, Option<T>)> =
            Vec::with_capacity(self.config.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .config
                .shards
                .iter()
                .enumerate()
                .map(|(shard, replicas)| {
                    let config = &self.config;
                    scope.spawn(move || query_shard(config, shard, replicas, op))
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().expect("shard query thread panicked"));
            }
        });
        outcomes
    }

    /// Merges per-shard classifications into the exact global answer.
    fn merge_classifications(&self, answered: Vec<Classification>) -> Option<Classification> {
        let mut answered = answered;
        let feature_vector = answered.first()?.feature_vector.clone();
        let neighbors = merge_neighbors(
            answered.drain(..).flat_map(|c| c.neighbors).collect(),
            self.config.knn_k,
        );
        let predicted = kinemyo_modb::classify(&neighbors, |m| m.class)?;
        Some(Classification {
            predicted,
            neighbors,
            feature_vector,
        })
    }

    /// Merges shard outcomes for batch item `i`.
    fn merge_batch_item(&self, per_shard: &[Vec<BatchItem>], i: usize) -> BatchItem {
        let mut answered: Vec<Classification> = Vec::new();
        let mut fallback: Option<BatchItem> = None;
        for items in per_shard {
            match items.get(i) {
                Some(BatchItem::Ok { result }) => answered.push(result.clone()),
                Some(other) => {
                    fallback.get_or_insert_with(|| other.clone());
                }
                None => {}
            }
        }
        match self.merge_classifications(answered) {
            Some(result) => BatchItem::Ok { result },
            None => fallback.unwrap_or(BatchItem::Failed {
                message: "no shard answered this item".into(),
            }),
        }
    }
}

/// Deduplicates by id, orders by `(distance, id)` under a total order,
/// and keeps the `k` nearest.
fn merge_neighbors(
    mut neighbors: Vec<Neighbor<RecordMeta>>,
    k: usize,
) -> Vec<Neighbor<RecordMeta>> {
    neighbors.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id.cmp(&b.id))
    });
    let mut seen = BTreeSet::new();
    neighbors.retain(|n| seen.insert(n.id));
    neighbors.truncate(k);
    neighbors
}

/// Queries one shard: sweeps its replicas in order under the shard
/// deadline, sleeping a jittered backoff between full sweeps.
fn query_shard<T, F>(
    config: &RouterConfig,
    shard: usize,
    replicas: &[String],
    op: &F,
) -> (ShardHealth, Option<T>)
where
    F: Fn(&mut ServeClient) -> std::result::Result<ShardAnswer<T>, CallOutcome>,
{
    let start = Instant::now();
    let deadline = config.shard_deadline;
    let policy = config
        .retry
        .clone()
        .with_seed(config.retry.seed ^ shard as u64);
    let mut schedule = policy.schedule();
    let mut attempts = 0u32;
    let mut refused: Option<String> = None;
    let mut last_error = String::from("no replica attempted");
    loop {
        for replica in replicas {
            if start.elapsed() >= deadline {
                return shard_failed(shard, replica, attempts, start, refused, last_error, true);
            }
            attempts += 1;
            let mut client = match ServeClient::connect(replica.as_str()) {
                Ok(client) => client,
                Err(e) => {
                    last_error = format!("{replica}: {e}");
                    continue;
                }
            };
            let remaining = deadline.saturating_sub(start.elapsed());
            if client
                .set_timeout(Some(remaining.max(Duration::from_millis(1))))
                .is_err()
            {
                last_error = format!("{replica}: could not arm read timeout");
                continue;
            }
            match op(&mut client) {
                Ok(ShardAnswer::Value(value)) => {
                    let health = ShardHealth {
                        shard,
                        replica: replica.clone(),
                        attempts,
                        status: ShardStatus::Answered,
                        elapsed_ms: start.elapsed().as_millis() as u64,
                    };
                    return (health, Some(value));
                }
                Ok(ShardAnswer::Refused(reason)) => {
                    refused = Some(format!("{replica}: {reason}"));
                }
                Err(CallOutcome::Rejected(response)) => {
                    refused = Some(format!("{replica}: {}", describe_rejection(&response)));
                }
                Err(CallOutcome::Transport(e)) => {
                    last_error = format!("{replica}: {e}");
                }
            }
        }
        match schedule.next_delay() {
            Some(delay) if start.elapsed() + delay < deadline => std::thread::sleep(delay),
            _ => {
                let replica = replicas.last().expect("validated non-empty").clone();
                return shard_failed(shard, &replica, attempts, start, refused, last_error, false);
            }
        }
    }
}

fn shard_failed<T>(
    shard: usize,
    replica: &str,
    attempts: u32,
    start: Instant,
    refused: Option<String>,
    last_error: String,
    deadline_hit: bool,
) -> (ShardHealth, Option<T>) {
    let status = match refused {
        Some(reason) => ShardStatus::Refused { reason },
        None => ShardStatus::Dead {
            reason: if deadline_hit {
                format!("shard deadline exceeded; last error: {last_error}")
            } else {
                last_error
            },
        },
    };
    let health = ShardHealth {
        shard,
        replica: replica.to_string(),
        attempts,
        status,
        elapsed_ms: start.elapsed().as_millis() as u64,
    };
    (health, None)
}

fn describe_rejection(response: &Response) -> String {
    match response {
        Response::Overloaded { queue_capacity } => {
            format!("overloaded (queue capacity {queue_capacity})")
        }
        Response::ShuttingDown => "shutting down".into(),
        Response::DeadlineExceeded { waited_ms } => {
            format!("deadline exceeded after {waited_ms} ms")
        }
        Response::NotLeader { leader_hint } => match leader_hint {
            Some(hint) => format!("not leader (try {hint})"),
            None => "not leader".into(),
        },
        Response::Error { message } => format!("error: {message}"),
        other => format!("unexpected reply {other:?}"),
    }
}

/// A TCP front-end that speaks the serve protocol and answers from a
/// [`Router`]. Health reports [`Role::Router`]; classify responses
/// attach the cluster health section.
pub struct RouterServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts answering.
    pub fn start(router: Router, addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let router = Arc::new(router);
        let handle = std::thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || loop {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let router = Arc::clone(&router);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let _ = route_connection(&router, stream, &stop);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn router acceptor");
        Ok(Self {
            addr: bound,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until the acceptor exits — a client `shutdown` request or
    /// a listener failure. The blocking call a daemon `main` wants.
    pub fn wait(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections and joins the acceptor.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn route_connection(router: &Router, stream: TcpStream, stop: &AtomicBool) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode_frame::<Request>(&line) {
            Ok(request) => request,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                );
                continue;
            }
        };
        let response = match request {
            Request::Classify { record } => {
                let (merged, cluster) = router.classify(&record);
                match merged {
                    Some(result) => Response::Result {
                        result,
                        cluster: Some(cluster),
                    },
                    None => Response::Error {
                        message: format!("no shard answered: {cluster}"),
                    },
                }
            }
            Request::ClassifyBatch { records } => {
                let (results, cluster) = router.classify_batch(&records);
                Response::BatchResult {
                    results,
                    cluster: Some(cluster),
                }
            }
            Request::Health => {
                let (health, cluster) = router.health();
                match health {
                    Some(response) => response,
                    None => Response::Error {
                        message: format!("no shard answered health probe: {cluster}"),
                    },
                }
            }
            Request::Insert { .. } => Response::NotLeader { leader_hint: None },
            Request::Shutdown => {
                let _ = write_frame(&mut writer, &Response::ShuttingDown);
                stop.store(true, Ordering::Release);
                return Ok(());
            }
            _ => Response::Error {
                message: "request is not routable; send it to a shard node directly".into(),
            },
        };
        if write_frame(&mut writer, &response).is_err() {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::MotionClass;

    fn neighbor(id: usize, class: MotionClass, distance: f64) -> Neighbor<RecordMeta> {
        Neighbor {
            id,
            meta: RecordMeta {
                record_id: id,
                class,
                participant: 0,
                trial: 0,
            },
            distance,
        }
    }

    #[test]
    fn config_validation_catches_degenerate_topologies() {
        assert!(matches!(
            Router::new(RouterConfig::default()),
            Err(ClusterError::Config { .. })
        ));
        let empty_shard =
            RouterConfig::default().with_shards(vec![vec!["127.0.0.1:1".into()], vec![]]);
        assert!(matches!(
            Router::new(empty_shard),
            Err(ClusterError::Config { .. })
        ));
        let zero_k = RouterConfig::default()
            .with_shards(vec![vec!["127.0.0.1:1".into()]])
            .with_knn_k(0);
        assert!(matches!(
            Router::new(zero_k),
            Err(ClusterError::Config { .. })
        ));
    }

    #[test]
    fn merge_dedups_by_id_sorts_totally_and_truncates() {
        let classes = [MotionClass::RaiseArm, MotionClass::ThrowBall];
        let merged = merge_neighbors(
            vec![
                neighbor(3, classes[0], 0.5),
                neighbor(1, classes[1], 0.2),
                // Duplicate id from a replicated shard: same distance.
                neighbor(1, classes[1], 0.2),
                neighbor(2, classes[0], 0.2),
                neighbor(4, classes[0], 0.9),
            ],
            3,
        );
        let ids: Vec<usize> = merged.iter().map(|n| n.id).collect();
        // Ties on distance break by id; duplicate id 1 appears once.
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn dead_shards_surface_in_cluster_health() {
        // Bind-then-drop leaves addresses nobody answers.
        let dead = |_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let a = l.local_addr().unwrap().to_string();
            drop(l);
            vec![a]
        };
        let config = RouterConfig::default()
            .with_shards((0..2).map(dead).collect())
            .with_shard_deadline(Duration::from_millis(100))
            .with_retry(
                RetryPolicy::default()
                    .with_base(Duration::from_millis(5))
                    .with_cap(Duration::from_millis(10))
                    .with_max_attempts(2),
            );
        let router = Router::new(config).unwrap();
        let (health, cluster) = router.health();
        assert!(health.is_none());
        assert_eq!(cluster.shards_total, 2);
        assert_eq!(cluster.shards_answered, 0);
        assert!(!cluster.is_complete());
        assert_eq!(cluster.missing(), vec![0, 1]);
        for shard in &cluster.shards {
            assert!(matches!(shard.status, ShardStatus::Dead { .. }));
            assert!(shard.attempts >= 1);
        }
    }
}
