//! Sharded scatter-gather serving with graceful degradation.
//!
//! A [`Router`] owns no model and no data — it fans a query out to one
//! replica of every shard under a per-shard deadline budget, retries on
//! surviving replicas with the serve layer's capped-and-jittered
//! backoff, and merges whatever comes back. Because every shard runs
//! the same trained model (the same FCM feature space) over a disjoint
//! slice of the motion database, merging is exact: deduplicate
//! neighbours by id, re-sort by `(distance, id)` with a total order,
//! truncate to `k`, and majority-vote — when every shard answers, the
//! result is bit-identical to a single node holding the whole database.
//!
//! Degradation is honest rather than silent: every response carries a
//! [`ClusterHealth`] section naming which shards answered, which
//! refused, and which were dead, so a partial answer is typed as
//! partial instead of masquerading as complete.

use crate::error::{ClusterError, Result};
use kinemyo::cluster::{ClusterHealth, ShardHealth, ShardStatus};
use kinemyo::pipeline::{Classification, RecordMeta};
use kinemyo_biosim::MotionRecord;
use kinemyo_modb::Neighbor;
use kinemyo_serve::{
    decode_frame, write_frame, BatchItem, CallOutcome, ReloadPolicy, Request, Response,
    RetryPolicy, Role, ServeClient,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard topology and query budgets for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Serve addresses per shard: `shards[i]` lists the replicas that
    /// can answer for shard `i`, tried in order.
    pub shards: Vec<Vec<String>>,
    /// Wall-clock budget for one shard's answer, connection attempts
    /// and retries included.
    pub shard_deadline: Duration,
    /// Backoff between retry sweeps over a shard's replicas. The seed
    /// is decorrelated per shard (`seed ^ shard index`).
    pub retry: RetryPolicy,
    /// Number of neighbours the merged answer keeps (the global `k`).
    pub knn_k: usize,
    /// Streaming sessions the router will pin concurrently; opens
    /// beyond this shed with a typed `session_overloaded`.
    pub session_routes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: Vec::new(),
            shard_deadline: Duration::from_secs(2),
            retry: RetryPolicy::default()
                .with_base(Duration::from_millis(10))
                .with_cap(Duration::from_millis(100))
                .with_max_attempts(3),
            knn_k: 5,
            session_routes: 256,
        }
    }
}

impl RouterConfig {
    /// Sets the shard replica lists.
    pub fn with_shards(mut self, shards: Vec<Vec<String>>) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard deadline budget.
    pub fn with_shard_deadline(mut self, deadline: Duration) -> Self {
        self.shard_deadline = deadline;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the merged neighbour count.
    pub fn with_knn_k(mut self, k: usize) -> Self {
        self.knn_k = k;
        self
    }

    /// Overrides the pinned-session capacity.
    pub fn with_session_routes(mut self, routes: usize) -> Self {
        self.session_routes = routes;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.shards.is_empty() {
            return Err(ClusterError::Config {
                reason: "router needs at least one shard".into(),
            });
        }
        if let Some(i) = self.shards.iter().position(Vec::is_empty) {
            return Err(ClusterError::Config {
                reason: format!("shard {i} has no replicas"),
            });
        }
        if self.knn_k == 0 {
            return Err(ClusterError::Config {
                reason: "knn_k must be at least 1".into(),
            });
        }
        if self.shard_deadline.is_zero() {
            return Err(ClusterError::Config {
                reason: "shard deadline must be non-zero".into(),
            });
        }
        Ok(())
    }
}

/// What one shard produced for one request.
enum ShardAnswer<T> {
    Value(T),
    Refused(String),
}

/// Where a pinned streaming session lives: the replica holding its
/// state and the id that replica knows it by.
#[derive(Debug, Clone)]
struct SessionRoute {
    addr: String,
    backend: u64,
}

/// Bounded router-id → route table. Backends number sessions locally —
/// two shards can both hand out id 1 — so the router speaks its own id
/// space to clients and rewrites ids at the boundary.
struct SessionRoutes {
    routes: Mutex<BTreeMap<u64, SessionRoute>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl SessionRoutes {
    fn new(capacity: usize) -> Self {
        Self {
            routes: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            capacity,
        }
    }

    /// Pins a route under a fresh router id; `None` sheds at capacity.
    fn pin(&self, route: SessionRoute) -> Option<u64> {
        let mut routes = self.routes.lock();
        if routes.len() >= self.capacity {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        routes.insert(id, route);
        Some(id)
    }

    fn lookup(&self, id: u64) -> Option<SessionRoute> {
        self.routes.lock().get(&id).cloned()
    }

    fn unpin(&self, id: u64) {
        self.routes.lock().remove(&id);
    }

    fn pinned(&self) -> u64 {
        self.routes.lock().len() as u64
    }
}

/// Scatter-gather query engine over a fixed shard topology.
pub struct Router {
    config: RouterConfig,
    sessions: SessionRoutes,
    next_session_shard: AtomicU64,
}

impl Router {
    /// Builds a router after validating the topology.
    pub fn new(config: RouterConfig) -> Result<Self> {
        config.validate()?;
        let sessions = SessionRoutes::new(config.session_routes);
        Ok(Self {
            config,
            sessions,
            next_session_shard: AtomicU64::new(0),
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Streaming sessions currently pinned through this router.
    pub fn sessions_routed(&self) -> u64 {
        self.sessions.pinned()
    }

    /// Classifies one record across every shard. Returns the merged
    /// classification (when at least one shard answered) and the
    /// cluster health naming every shard's outcome.
    pub fn classify(&self, record: &MotionRecord) -> (Option<Classification>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.classify(record) {
            Ok(result) => Ok(ShardAnswer::Value(result)),
            Err(outcome) => Err(outcome),
        });
        let mut answered: Vec<Classification> = Vec::new();
        let mut shards = Vec::with_capacity(outcomes.len());
        for (health, value) in outcomes {
            if let Some(result) = value {
                answered.push(result);
            }
            shards.push(health);
        }
        let merged = self.merge_classifications(answered);
        (merged, self.cluster_health(shards))
    }

    /// Attaches the live pinned-session count to a shard report.
    fn cluster_health(&self, shards: Vec<ShardHealth>) -> ClusterHealth {
        ClusterHealth::from_shards(shards).with_sessions_routed(self.sessions.pinned())
    }

    /// Opens a streaming session on one shard (round-robin affinity) and
    /// pins every later frame of that session to the replica that
    /// answered. The router id returned to the client is rewritten from
    /// the backend's local id.
    pub fn session_open(&self, policy: ReloadPolicy, arms: Option<Vec<usize>>) -> Response {
        let shard = (self.next_session_shard.fetch_add(1, Ordering::Relaxed)
            % self.config.shards.len() as u64) as usize;
        let mut last_error = String::from("no replica attempted");
        for replica in &self.config.shards[shard] {
            let mut client = match ServeClient::connect(replica.as_str()) {
                Ok(client) => client,
                Err(e) => {
                    last_error = format!("{replica}: {e}");
                    continue;
                }
            };
            let _ = client.set_timeout(Some(self.config.shard_deadline));
            match client.call(&Request::SessionOpen {
                policy,
                arms: arms.clone(),
            }) {
                Ok(Response::SessionOpened {
                    session,
                    generation,
                    window_lens,
                    budget_us,
                }) => {
                    let route = SessionRoute {
                        addr: replica.clone(),
                        backend: session,
                    };
                    return match self.sessions.pin(route) {
                        Some(id) => Response::SessionOpened {
                            session: id,
                            generation,
                            window_lens,
                            budget_us,
                        },
                        None => {
                            // Shed at the router's own capacity; release
                            // the backend session we just created.
                            let _ = client.call(&Request::SessionClose { session });
                            Response::SessionOverloaded {
                                capacity: self.config.session_routes,
                            }
                        }
                    };
                }
                // A typed refusal from the shard (its own shedding, a
                // drain, ...) passes through untouched.
                Ok(other) => return other,
                Err(e) => last_error = format!("{replica}: {e}"),
            }
        }
        Response::Error {
            message: format!("session open failed on shard {shard}: {last_error}"),
        }
    }

    /// Forwards one session request to the replica its session is
    /// pinned to, rewriting ids both ways. A transport failure unpins
    /// the route: the backend state is gone with the node.
    pub fn session_forward(&self, session: u64, make: impl FnOnce(u64) -> Request) -> Response {
        let Some(route) = self.sessions.lookup(session) else {
            return Response::SessionUnknown { session };
        };
        let mut client = match ServeClient::connect(route.addr.as_str()) {
            Ok(client) => client,
            Err(e) => {
                self.sessions.unpin(session);
                return Response::Error {
                    message: format!("session {session} lost ({}: {e})", route.addr),
                };
            }
        };
        let _ = client.set_timeout(Some(self.config.shard_deadline));
        match client.call(&make(route.backend)) {
            Ok(response) => self.rewrite_session_reply(session, response),
            Err(e) => {
                self.sessions.unpin(session);
                Response::Error {
                    message: format!("session {session} lost ({}: {e})", route.addr),
                }
            }
        }
    }

    /// Maps backend session ids in a reply back to the router's id
    /// space, unpinning closed or unknown sessions.
    fn rewrite_session_reply(&self, router_id: u64, response: Response) -> Response {
        match response {
            Response::SessionWindows {
                session: _,
                generation,
                windows,
                rejected,
                drift,
            } => Response::SessionWindows {
                session: router_id,
                generation,
                windows,
                rejected,
                drift,
            },
            Response::SessionResult { mut verdict } => {
                verdict.session = router_id;
                Response::SessionResult { verdict }
            }
            Response::SessionClosed { mut summary } => {
                self.sessions.unpin(router_id);
                summary.session = router_id;
                summary.verdict.session = router_id;
                Response::SessionClosed { summary }
            }
            Response::SessionUnknown { .. } => {
                self.sessions.unpin(router_id);
                Response::SessionUnknown { session: router_id }
            }
            other => other,
        }
    }

    /// Classifies a batch across every shard, merging per item. An item
    /// classified by any shard merges the answering shards' neighbours;
    /// items no shard could serve keep a typed failure.
    pub fn classify_batch(&self, records: &[MotionRecord]) -> (Vec<BatchItem>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.classify_batch(records) {
            Ok(items) => Ok(ShardAnswer::Value(items)),
            Err(outcome) => Err(outcome),
        });
        let mut per_shard: Vec<Vec<BatchItem>> = Vec::new();
        let mut shards = Vec::with_capacity(outcomes.len());
        for (health, value) in outcomes {
            if let Some(items) = value {
                per_shard.push(items);
            }
            shards.push(health);
        }
        let mut merged = Vec::with_capacity(records.len());
        for i in 0..records.len() {
            merged.push(self.merge_batch_item(&per_shard, i));
        }
        (merged, self.cluster_health(shards))
    }

    /// Polls shard health: sums motion counts over answering shards and
    /// reports the topology's worst-case visibility via `ClusterHealth`.
    pub fn health(&self) -> (Option<Response>, ClusterHealth) {
        let outcomes = self.scatter(|client| match client.health() {
            Ok(response @ Response::Health { .. }) => Ok(ShardAnswer::Value(response)),
            Ok(other) => Ok(ShardAnswer::Refused(format!("unexpected reply {other:?}"))),
            Err(e) => Err(CallOutcome::Transport(e)),
        });
        let mut shards = Vec::with_capacity(outcomes.len());
        let mut total_motions = 0usize;
        let mut newest_generation = 0u64;
        let mut limb = None;
        let mut index = None;
        let mut uptime = 0u64;
        let mut any = false;
        for (health, value) in outcomes {
            if let Some(Response::Health {
                model_generation,
                motions,
                limb: shard_limb,
                uptime_ms,
                index: shard_index,
                ..
            }) = value
            {
                any = true;
                total_motions += motions;
                newest_generation = newest_generation.max(model_generation);
                limb.get_or_insert(shard_limb);
                index.get_or_insert(shard_index);
                uptime = uptime.max(uptime_ms);
            }
            shards.push(health);
        }
        let response = match (any, limb) {
            (true, Some(limb)) => Some(Response::Health {
                model_generation: newest_generation,
                motions: total_motions,
                limb,
                uptime_ms: uptime,
                role: Role::Router,
                // Like `limb`: the first answering shard's backend stands
                // in for the topology (heterogeneous only mid-rollout).
                index: index.unwrap_or_default(),
            }),
            _ => None,
        };
        (response, self.cluster_health(shards))
    }

    /// Fans `op` out to every shard on its own thread, each with its
    /// own deadline budget and replica retry sweep.
    fn scatter<T, F>(&self, op: F) -> Vec<(ShardHealth, Option<T>)>
    where
        T: Send,
        F: Fn(&mut ServeClient) -> std::result::Result<ShardAnswer<T>, CallOutcome> + Sync,
    {
        let op = &op;
        let mut outcomes: Vec<(ShardHealth, Option<T>)> =
            Vec::with_capacity(self.config.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .config
                .shards
                .iter()
                .enumerate()
                .map(|(shard, replicas)| {
                    let config = &self.config;
                    scope.spawn(move || query_shard(config, shard, replicas, op))
                })
                .collect();
            for handle in handles {
                outcomes.push(handle.join().expect("shard query thread panicked"));
            }
        });
        outcomes
    }

    /// Merges per-shard classifications into the exact global answer.
    fn merge_classifications(&self, answered: Vec<Classification>) -> Option<Classification> {
        let mut answered = answered;
        let feature_vector = answered.first()?.feature_vector.clone();
        let neighbors = merge_neighbors(
            answered.drain(..).flat_map(|c| c.neighbors).collect(),
            self.config.knn_k,
        );
        let predicted = kinemyo_modb::classify(&neighbors, |m| m.class)?;
        Some(Classification {
            predicted,
            neighbors,
            feature_vector,
        })
    }

    /// Merges shard outcomes for batch item `i`.
    fn merge_batch_item(&self, per_shard: &[Vec<BatchItem>], i: usize) -> BatchItem {
        let mut answered: Vec<Classification> = Vec::new();
        let mut fallback: Option<BatchItem> = None;
        for items in per_shard {
            match items.get(i) {
                Some(BatchItem::Ok { result }) => answered.push(result.clone()),
                Some(other) => {
                    fallback.get_or_insert_with(|| other.clone());
                }
                None => {}
            }
        }
        match self.merge_classifications(answered) {
            Some(result) => BatchItem::Ok { result },
            None => fallback.unwrap_or(BatchItem::Failed {
                message: "no shard answered this item".into(),
            }),
        }
    }
}

/// Deduplicates by id, orders by `(distance, id)` under a total order,
/// and keeps the `k` nearest.
fn merge_neighbors(
    mut neighbors: Vec<Neighbor<RecordMeta>>,
    k: usize,
) -> Vec<Neighbor<RecordMeta>> {
    neighbors.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.id.cmp(&b.id))
    });
    let mut seen = BTreeSet::new();
    neighbors.retain(|n| seen.insert(n.id));
    neighbors.truncate(k);
    neighbors
}

/// Queries one shard: sweeps its replicas in order under the shard
/// deadline, sleeping a jittered backoff between full sweeps.
fn query_shard<T, F>(
    config: &RouterConfig,
    shard: usize,
    replicas: &[String],
    op: &F,
) -> (ShardHealth, Option<T>)
where
    F: Fn(&mut ServeClient) -> std::result::Result<ShardAnswer<T>, CallOutcome>,
{
    let start = Instant::now();
    let deadline = config.shard_deadline;
    let policy = config
        .retry
        .clone()
        .with_seed(config.retry.seed ^ shard as u64);
    let mut schedule = policy.schedule();
    let mut attempts = 0u32;
    let mut refused: Option<String> = None;
    let mut last_error = String::from("no replica attempted");
    loop {
        for replica in replicas {
            if start.elapsed() >= deadline {
                return shard_failed(shard, replica, attempts, start, refused, last_error, true);
            }
            attempts += 1;
            let mut client = match ServeClient::connect(replica.as_str()) {
                Ok(client) => client,
                Err(e) => {
                    last_error = format!("{replica}: {e}");
                    continue;
                }
            };
            let remaining = deadline.saturating_sub(start.elapsed());
            if client
                .set_timeout(Some(remaining.max(Duration::from_millis(1))))
                .is_err()
            {
                last_error = format!("{replica}: could not arm read timeout");
                continue;
            }
            match op(&mut client) {
                Ok(ShardAnswer::Value(value)) => {
                    let health = ShardHealth {
                        shard,
                        replica: replica.clone(),
                        attempts,
                        status: ShardStatus::Answered,
                        elapsed_ms: start.elapsed().as_millis() as u64,
                    };
                    return (health, Some(value));
                }
                Ok(ShardAnswer::Refused(reason)) => {
                    refused = Some(format!("{replica}: {reason}"));
                }
                Err(CallOutcome::Rejected(response)) => {
                    refused = Some(format!("{replica}: {}", describe_rejection(&response)));
                }
                Err(CallOutcome::Transport(e)) => {
                    last_error = format!("{replica}: {e}");
                }
            }
        }
        match schedule.next_delay() {
            Some(delay) if start.elapsed() + delay < deadline => std::thread::sleep(delay),
            _ => {
                let replica = replicas.last().expect("validated non-empty").clone();
                return shard_failed(shard, &replica, attempts, start, refused, last_error, false);
            }
        }
    }
}

fn shard_failed<T>(
    shard: usize,
    replica: &str,
    attempts: u32,
    start: Instant,
    refused: Option<String>,
    last_error: String,
    deadline_hit: bool,
) -> (ShardHealth, Option<T>) {
    let status = match refused {
        Some(reason) => ShardStatus::Refused { reason },
        None => ShardStatus::Dead {
            reason: if deadline_hit {
                format!("shard deadline exceeded; last error: {last_error}")
            } else {
                last_error
            },
        },
    };
    let health = ShardHealth {
        shard,
        replica: replica.to_string(),
        attempts,
        status,
        elapsed_ms: start.elapsed().as_millis() as u64,
    };
    (health, None)
}

fn describe_rejection(response: &Response) -> String {
    match response {
        Response::Overloaded { queue_capacity } => {
            format!("overloaded (queue capacity {queue_capacity})")
        }
        Response::ShuttingDown => "shutting down".into(),
        Response::DeadlineExceeded { waited_ms } => {
            format!("deadline exceeded after {waited_ms} ms")
        }
        Response::NotLeader { leader_hint } => match leader_hint {
            Some(hint) => format!("not leader (try {hint})"),
            None => "not leader".into(),
        },
        Response::Error { message } => format!("error: {message}"),
        other => format!("unexpected reply {other:?}"),
    }
}

/// A TCP front-end that speaks the serve protocol and answers from a
/// [`Router`]. Health reports [`Role::Router`]; classify responses
/// attach the cluster health section.
pub struct RouterServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts answering.
    pub fn start(router: Router, addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let router = Arc::new(router);
        let handle = std::thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || loop {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let router = Arc::clone(&router);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let _ = route_connection(&router, stream, &stop);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn router acceptor");
        Ok(Self {
            addr: bound,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until the acceptor exits — a client `shutdown` request or
    /// a listener failure. The blocking call a daemon `main` wants.
    pub fn wait(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections and joins the acceptor.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn route_connection(router: &Router, stream: TcpStream, stop: &AtomicBool) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match decode_frame::<Request>(&line) {
            Ok(request) => request,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                );
                continue;
            }
        };
        let response = match request {
            Request::Classify { record } => {
                let (merged, cluster) = router.classify(&record);
                match merged {
                    Some(result) => Response::Result {
                        result,
                        cluster: Some(cluster),
                    },
                    None => Response::Error {
                        message: format!("no shard answered: {cluster}"),
                    },
                }
            }
            Request::ClassifyBatch { records } => {
                let (results, cluster) = router.classify_batch(&records);
                Response::BatchResult {
                    results,
                    cluster: Some(cluster),
                }
            }
            Request::Health => {
                let (health, cluster) = router.health();
                match health {
                    Some(response) => response,
                    None => Response::Error {
                        message: format!("no shard answered health probe: {cluster}"),
                    },
                }
            }
            Request::Insert { .. } => Response::NotLeader { leader_hint: None },
            Request::SessionOpen { policy, arms } => router.session_open(policy, arms),
            Request::SessionPush { session, frames } => {
                router.session_forward(session, move |backend| Request::SessionPush {
                    session: backend,
                    frames,
                })
            }
            Request::SessionResult { session } => router.session_forward(session, |backend| {
                Request::SessionResult { session: backend }
            }),
            Request::SessionClose { session } => router.session_forward(session, |backend| {
                Request::SessionClose { session: backend }
            }),
            Request::Shutdown => {
                let _ = write_frame(&mut writer, &Response::ShuttingDown);
                stop.store(true, Ordering::Release);
                return Ok(());
            }
            _ => Response::Error {
                message: "request is not routable; send it to a shard node directly".into(),
            },
        };
        if write_frame(&mut writer, &response).is_err() {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::MotionClass;

    fn neighbor(id: usize, class: MotionClass, distance: f64) -> Neighbor<RecordMeta> {
        Neighbor {
            id,
            meta: RecordMeta {
                record_id: id,
                class,
                participant: 0,
                trial: 0,
            },
            distance,
        }
    }

    #[test]
    fn config_validation_catches_degenerate_topologies() {
        assert!(matches!(
            Router::new(RouterConfig::default()),
            Err(ClusterError::Config { .. })
        ));
        let empty_shard =
            RouterConfig::default().with_shards(vec![vec!["127.0.0.1:1".into()], vec![]]);
        assert!(matches!(
            Router::new(empty_shard),
            Err(ClusterError::Config { .. })
        ));
        let zero_k = RouterConfig::default()
            .with_shards(vec![vec!["127.0.0.1:1".into()]])
            .with_knn_k(0);
        assert!(matches!(
            Router::new(zero_k),
            Err(ClusterError::Config { .. })
        ));
    }

    #[test]
    fn merge_dedups_by_id_sorts_totally_and_truncates() {
        let classes = [MotionClass::RaiseArm, MotionClass::ThrowBall];
        let merged = merge_neighbors(
            vec![
                neighbor(3, classes[0], 0.5),
                neighbor(1, classes[1], 0.2),
                // Duplicate id from a replicated shard: same distance.
                neighbor(1, classes[1], 0.2),
                neighbor(2, classes[0], 0.2),
                neighbor(4, classes[0], 0.9),
            ],
            3,
        );
        let ids: Vec<usize> = merged.iter().map(|n| n.id).collect();
        // Ties on distance break by id; duplicate id 1 appears once.
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn session_routes_shed_at_capacity_and_never_reuse_ids() {
        let routes = SessionRoutes::new(2);
        let route = |backend| SessionRoute {
            addr: "127.0.0.1:1".into(),
            backend,
        };
        let a = routes.pin(route(1)).unwrap();
        let b = routes.pin(route(1)).unwrap();
        assert_ne!(a, b, "same backend id maps to distinct router ids");
        assert!(routes.pin(route(2)).is_none(), "capacity 2 sheds");
        routes.unpin(a);
        let c = routes.pin(route(3)).unwrap();
        assert!(c > b, "router ids are never recycled");
        assert_eq!(routes.pinned(), 2);
        assert_eq!(routes.lookup(c).unwrap().backend, 3);
        assert!(routes.lookup(a).is_none());
    }

    #[test]
    fn unknown_session_forward_is_typed_without_touching_the_network() {
        let config = RouterConfig::default().with_shards(vec![vec!["127.0.0.1:1".into()]]);
        let router = Router::new(config).unwrap();
        match router.session_forward(99, |backend| Request::SessionResult { session: backend }) {
            Response::SessionUnknown { session } => assert_eq!(session, 99),
            other => panic!("expected session_unknown, got {other:?}"),
        }
        assert_eq!(router.sessions_routed(), 0);
    }

    #[test]
    fn dead_shards_surface_in_cluster_health() {
        // Bind-then-drop leaves addresses nobody answers.
        let dead = |_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let a = l.local_addr().unwrap().to_string();
            drop(l);
            vec![a]
        };
        let config = RouterConfig::default()
            .with_shards((0..2).map(dead).collect())
            .with_shard_deadline(Duration::from_millis(100))
            .with_retry(
                RetryPolicy::default()
                    .with_base(Duration::from_millis(5))
                    .with_cap(Duration::from_millis(10))
                    .with_max_attempts(2),
            );
        let router = Router::new(config).unwrap();
        let (health, cluster) = router.health();
        assert!(health.is_none());
        assert_eq!(cluster.shards_total, 2);
        assert_eq!(cluster.shards_answered, 0);
        assert!(!cluster.is_complete());
        assert_eq!(cluster.missing(), vec![0, 1]);
        for shard in &cluster.shards {
            assert!(matches!(shard.status, ShardStatus::Dead { .. }));
            assert!(shard.attempts >= 1);
        }
    }
}
