//! In-memory replication log the leader streams from.
//!
//! The log mirrors the durable store's commit order: entry `seq` is the
//! 1-based position the store assigned at commit time, so it is stable
//! across restarts and identical on every replica. Appends are
//! idempotent by sequence number, which makes the install-hook-then-seed
//! startup race harmless — whichever of the commit hook or the history
//! seed lands first wins, and the other is a no-op.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Sequence-ordered log of encoded WAL entry payloads.
#[derive(Default)]
pub struct ReplicationLog {
    entries: Mutex<BTreeMap<u64, Arc<Vec<u8>>>>,
    grew: Condvar,
}

impl ReplicationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `payload` at `seq`. Idempotent: a sequence number already
    /// present keeps its first payload. Returns `true` if the entry was
    /// new.
    pub fn append(&self, seq: u64, payload: &[u8]) -> bool {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let fresh = !entries.contains_key(&seq);
        if fresh {
            entries.insert(seq, Arc::new(payload.to_vec()));
            self.grew.notify_all();
        }
        fresh
    }

    /// Highest sequence number recorded, or 0 when empty.
    pub fn head(&self) -> u64 {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_empty()
    }

    /// All entries with sequence number `>= from`, in order.
    pub fn get_from(&self, from: u64) -> Vec<(u64, Arc<Vec<u8>>)> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .range(from..)
            .map(|(seq, payload)| (*seq, Arc::clone(payload)))
            .collect()
    }

    /// Blocks until the log holds an entry with sequence number beyond
    /// `seq`, or the timeout elapses. Returns the new head (which may
    /// still be `<= seq` on timeout).
    pub fn wait_beyond(&self, seq: u64, timeout: Duration) -> u64 {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let head = entries.keys().next_back().copied().unwrap_or(0);
            if head > seq {
                return head;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return head;
            }
            let (guard, result) = self
                .grew
                .wait_timeout(entries, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            entries = guard;
            if result.timed_out() {
                return entries.keys().next_back().copied().unwrap_or(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_idempotent_by_sequence() {
        let log = ReplicationLog::new();
        assert!(log.append(1, b"first"));
        assert!(!log.append(1, b"imposter"));
        assert!(log.append(2, b"second"));
        assert_eq!(log.head(), 2);
        assert_eq!(log.len(), 2);
        let got = log.get_from(1);
        assert_eq!(got[0].1.as_slice(), b"first");
        assert_eq!(got[1].1.as_slice(), b"second");
    }

    #[test]
    fn get_from_slices_the_tail() {
        let log = ReplicationLog::new();
        for seq in 1..=5u64 {
            log.append(seq, &[seq as u8]);
        }
        let tail = log.get_from(4);
        assert_eq!(tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![4, 5]);
        assert!(log.get_from(6).is_empty());
    }

    #[test]
    fn wait_beyond_wakes_on_append_and_times_out_when_idle() {
        let log = Arc::new(ReplicationLog::new());
        log.append(1, b"x");
        // Idle log: times out, returns current head.
        assert_eq!(log.wait_beyond(1, Duration::from_millis(20)), 1);

        let waiter = Arc::clone(&log);
        let handle = std::thread::spawn(move || waiter.wait_beyond(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        log.append(2, b"y");
        assert_eq!(handle.join().unwrap(), 2);
    }
}
