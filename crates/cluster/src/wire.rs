//! The replication wire protocol: KWAL v1 frames over TCP.
//!
//! Every message is one `len: u32 LE | crc: u32 LE | body` frame — the
//! exact frame format kinemyo-store writes to disk (`crc` is the IEEE
//! CRC-32 of the body), so the WAL *is* the wire format: a shipped
//! [`ReplMsg::Entry`] carries the same `encode_entry` bytes the leader
//! appended to its segment, and the follower re-logs them bit-identically.
//!
//! Reading is incremental ([`MsgBuf`]): bytes accumulate across short
//! socket reads, and three outcomes are kept distinct on purpose —
//! *incomplete* (wait for more bytes), *corrupt-but-framed* (checksum
//! failed but the length prefix was honoured, so the stream stays in
//! sync and the follower can re-request in-stream), and *desynced*
//! (framing itself is gone; the only recovery is a reconnect).

use crate::error::{ClusterError, Result};
use kinemyo_store::crc32;
use std::io::{Read, Write};

/// Upper bound on one replication frame body; mirrors the store's frame
/// cap so a WAL entry always fits.
pub const MAX_WIRE_FRAME_BYTES: u32 = 64 << 20;

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_ENTRY: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_REREQUEST: u8 = 6;
const TAG_STATUS: u8 = 7;
const TAG_STATUS_REPLY: u8 = 8;

/// One replication message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower → leader: open (or resume) a replication stream.
    Hello {
        /// The follower's node id.
        node_id: u64,
        /// Highest sequence number the follower has applied; the leader
        /// streams everything after it.
        have_seq: u64,
    },
    /// Leader → follower: handshake accepted.
    Welcome {
        /// The leader's election epoch.
        epoch: u64,
        /// Vector dimensionality of the replicated store.
        dim: u32,
        /// The leader's newest committed sequence number.
        commit_seq: u64,
        /// The leader's client-facing serve address (the follower's
        /// `NotLeader` hint).
        serve_addr: String,
    },
    /// Leader → follower: one committed WAL entry.
    Entry {
        /// 1-based commit sequence number.
        seq: u64,
        /// The entry's WAL payload (`encode_entry` bytes).
        payload: Vec<u8>,
    },
    /// Leader → follower: liveness signal while the log is idle.
    Heartbeat {
        /// The leader's election epoch.
        epoch: u64,
        /// The leader's newest committed sequence number.
        commit_seq: u64,
    },
    /// Follower → leader: everything up to `seq` is durably applied.
    Ack {
        /// Highest applied sequence number.
        seq: u64,
    },
    /// Follower → leader: a frame was lost or corrupted; rewind the
    /// stream to `from_seq`.
    ReRequest {
        /// First sequence number to resend.
        from_seq: u64,
    },
    /// Any node → any node: who are you and how caught up are you?
    Status,
    /// Answer to [`ReplMsg::Status`].
    StatusReply {
        /// The responder's node id.
        node_id: u64,
        /// The responder's role code (0 single, 1 leader, 2 follower,
        /// 3 router) — matching `kinemyo_serve::Role` order.
        role: u8,
        /// The responder's election epoch.
        epoch: u64,
        /// Highest sequence number the responder has applied.
        applied_seq: u64,
        /// The responder's client-facing serve address.
        serve_addr: String,
        /// The responder's replication listen address.
        repl_addr: String,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one message as a complete KWAL frame (header + body), ready
/// to write to a socket.
pub fn encode_msg(msg: &ReplMsg) -> Vec<u8> {
    let mut body = Vec::new();
    match msg {
        ReplMsg::Hello { node_id, have_seq } => {
            body.push(TAG_HELLO);
            body.extend_from_slice(&node_id.to_le_bytes());
            body.extend_from_slice(&have_seq.to_le_bytes());
        }
        ReplMsg::Welcome {
            epoch,
            dim,
            commit_seq,
            serve_addr,
        } => {
            body.push(TAG_WELCOME);
            body.extend_from_slice(&epoch.to_le_bytes());
            body.extend_from_slice(&dim.to_le_bytes());
            body.extend_from_slice(&commit_seq.to_le_bytes());
            put_str(&mut body, serve_addr);
        }
        ReplMsg::Entry { seq, payload } => {
            body.push(TAG_ENTRY);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(payload);
        }
        ReplMsg::Heartbeat { epoch, commit_seq } => {
            body.push(TAG_HEARTBEAT);
            body.extend_from_slice(&epoch.to_le_bytes());
            body.extend_from_slice(&commit_seq.to_le_bytes());
        }
        ReplMsg::Ack { seq } => {
            body.push(TAG_ACK);
            body.extend_from_slice(&seq.to_le_bytes());
        }
        ReplMsg::ReRequest { from_seq } => {
            body.push(TAG_REREQUEST);
            body.extend_from_slice(&from_seq.to_le_bytes());
        }
        ReplMsg::Status => body.push(TAG_STATUS),
        ReplMsg::StatusReply {
            node_id,
            role,
            epoch,
            applied_seq,
            serve_addr,
            repl_addr,
        } => {
            body.push(TAG_STATUS_REPLY);
            body.extend_from_slice(&node_id.to_le_bytes());
            body.push(*role);
            body.extend_from_slice(&epoch.to_le_bytes());
            body.extend_from_slice(&applied_seq.to_le_bytes());
            put_str(&mut body, serve_addr);
            put_str(&mut body, repl_addr);
        }
    }
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Writes one message to `w` and flushes.
pub fn write_msg<W: Write>(w: &mut W, msg: &ReplMsg) -> Result<()> {
    w.write_all(&encode_msg(msg))?;
    w.flush()?;
    Ok(())
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        if n > MAX_WIRE_FRAME_BYTES as usize {
            return None;
        }
        let s = self.bytes(n)?;
        String::from_utf8(s.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_body(body: &[u8]) -> Result<ReplMsg> {
    let bad = |reason: &str| ClusterError::Protocol {
        reason: reason.to_string(),
    };
    let mut r = BodyReader { buf: body, pos: 0 };
    let tag = r.u8().ok_or_else(|| bad("empty message body"))?;
    let msg = match tag {
        TAG_HELLO => ReplMsg::Hello {
            node_id: r.u64().ok_or_else(|| bad("hello truncated"))?,
            have_seq: r.u64().ok_or_else(|| bad("hello truncated"))?,
        },
        TAG_WELCOME => ReplMsg::Welcome {
            epoch: r.u64().ok_or_else(|| bad("welcome truncated"))?,
            dim: r.u32().ok_or_else(|| bad("welcome truncated"))?,
            commit_seq: r.u64().ok_or_else(|| bad("welcome truncated"))?,
            serve_addr: r.string().ok_or_else(|| bad("welcome bad serve_addr"))?,
        },
        TAG_ENTRY => {
            let seq = r.u64().ok_or_else(|| bad("entry truncated"))?;
            let len = r.u32().ok_or_else(|| bad("entry truncated"))? as usize;
            let payload = r
                .bytes(len)
                .ok_or_else(|| bad("entry payload short"))?
                .to_vec();
            ReplMsg::Entry { seq, payload }
        }
        TAG_HEARTBEAT => ReplMsg::Heartbeat {
            epoch: r.u64().ok_or_else(|| bad("heartbeat truncated"))?,
            commit_seq: r.u64().ok_or_else(|| bad("heartbeat truncated"))?,
        },
        TAG_ACK => ReplMsg::Ack {
            seq: r.u64().ok_or_else(|| bad("ack truncated"))?,
        },
        TAG_REREQUEST => ReplMsg::ReRequest {
            from_seq: r.u64().ok_or_else(|| bad("re-request truncated"))?,
        },
        TAG_STATUS => ReplMsg::Status,
        TAG_STATUS_REPLY => ReplMsg::StatusReply {
            node_id: r.u64().ok_or_else(|| bad("status reply truncated"))?,
            role: r.u8().ok_or_else(|| bad("status reply truncated"))?,
            epoch: r.u64().ok_or_else(|| bad("status reply truncated"))?,
            applied_seq: r.u64().ok_or_else(|| bad("status reply truncated"))?,
            serve_addr: r
                .string()
                .ok_or_else(|| bad("status reply bad serve_addr"))?,
            repl_addr: r
                .string()
                .ok_or_else(|| bad("status reply bad repl_addr"))?,
        },
        other => {
            return Err(ClusterError::Protocol {
                reason: format!("unknown message tag {other}"),
            })
        }
    };
    if !r.done() {
        return Err(ClusterError::Protocol {
            reason: format!("{} trailing bytes after message", body.len() - r.pos),
        });
    }
    Ok(msg)
}

/// Incremental frame accumulator over a non-blocking or timeout socket.
///
/// Feed it bytes with [`fill_from`](Self::fill_from), drain messages
/// with [`next_msg`](Self::next_msg). Corrupt-but-framed frames surface
/// as [`ClusterError::CorruptFrame`] *after* the cursor has skipped the
/// frame, so the caller can send a re-request and keep parsing the same
/// connection.
#[derive(Debug, Default)]
pub struct MsgBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl MsgBuf {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the buffer. Returns the number of bytes
    /// read (0 = EOF). Timeout errors (`WouldBlock`/`TimedOut`) are
    /// mapped to `Ok(0)`-like progress by the caller; they surface here
    /// as the raw error.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let mut chunk = [0u8; 16 * 1024];
        let n = r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Bytes buffered but not yet parsed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Tries to parse the next message.
    ///
    /// * `Ok(Some(msg))` — a complete, checksum-valid message.
    /// * `Ok(None)` — the buffer holds only an incomplete frame; read
    ///   more bytes and try again.
    /// * `Err(CorruptFrame)` — a full frame arrived but its CRC failed;
    ///   the frame has been skipped and parsing can continue.
    /// * `Err(Desynced)` — the length prefix itself is implausible; the
    ///   stream cannot be re-framed and the connection must be dropped.
    pub fn next_msg(&mut self) -> Result<Option<ReplMsg>> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 8 {
            return Ok(None);
        }
        let mut len4 = [0u8; 4];
        let mut crc4 = [0u8; 4];
        len4.copy_from_slice(&rest[..4]);
        crc4.copy_from_slice(&rest[4..8]);
        let len = u32::from_le_bytes(len4);
        let want_crc = u32::from_le_bytes(crc4);
        if len > MAX_WIRE_FRAME_BYTES {
            return Err(ClusterError::Desynced {
                reason: format!("frame length {len} exceeds cap {MAX_WIRE_FRAME_BYTES}"),
            });
        }
        let len = len as usize;
        let Some(body) = rest.get(8..8 + len) else {
            return Ok(None); // incomplete — wait for more bytes
        };
        let got_crc = crc32(body);
        if got_crc != want_crc {
            // Length was honoured, so framing survives: skip this frame
            // and report the corruption for an in-stream re-request.
            self.pos += 8 + len;
            return Err(ClusterError::CorruptFrame {
                reason: format!("crc mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"),
            });
        }
        let msg = decode_body(body)?;
        self.pos += 8 + len;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<ReplMsg> {
        vec![
            ReplMsg::Hello {
                node_id: 3,
                have_seq: 17,
            },
            ReplMsg::Welcome {
                epoch: 2,
                dim: 16,
                commit_seq: 40,
                serve_addr: "127.0.0.1:7001".into(),
            },
            ReplMsg::Entry {
                seq: 41,
                payload: vec![1, 2, 3, 255, 0, 9],
            },
            ReplMsg::Heartbeat {
                epoch: 2,
                commit_seq: 41,
            },
            ReplMsg::Ack { seq: 41 },
            ReplMsg::ReRequest { from_seq: 18 },
            ReplMsg::Status,
            ReplMsg::StatusReply {
                node_id: 5,
                role: 2,
                epoch: 2,
                applied_seq: 41,
                serve_addr: "127.0.0.1:7002".into(),
                repl_addr: "127.0.0.1:8002".into(),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        let mut buf = MsgBuf::new();
        let msgs = all_messages();
        for m in &msgs {
            buf.extend(&encode_msg(m));
        }
        for m in &msgs {
            assert_eq!(buf.next_msg().unwrap().as_ref(), Some(m));
        }
        assert_eq!(buf.next_msg().unwrap(), None);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode_msg(&ReplMsg::Ack { seq: 9 });
        let mut buf = MsgBuf::new();
        for cut in 1..frame.len() {
            let mut b = MsgBuf::new();
            b.extend(&frame[..cut]);
            assert_eq!(b.next_msg().unwrap(), None, "cut {cut} must be incomplete");
        }
        // Byte-at-a-time arrival converges to the message.
        for byte in &frame {
            buf.extend(std::slice::from_ref(byte));
        }
        assert_eq!(buf.next_msg().unwrap(), Some(ReplMsg::Ack { seq: 9 }));
    }

    #[test]
    fn corrupt_body_is_skippable_and_stream_resyncs() {
        let mut bytes = encode_msg(&ReplMsg::Entry {
            seq: 7,
            payload: vec![9; 32],
        });
        // Flip one payload byte: CRC fails but the length prefix holds.
        let n = bytes.len();
        bytes[n - 1] ^= 0x55;
        bytes.extend_from_slice(&encode_msg(&ReplMsg::Heartbeat {
            epoch: 1,
            commit_seq: 7,
        }));
        let mut buf = MsgBuf::new();
        buf.extend(&bytes);
        assert!(matches!(
            buf.next_msg(),
            Err(ClusterError::CorruptFrame { .. })
        ));
        // The next message on the same stream still parses.
        assert_eq!(
            buf.next_msg().unwrap(),
            Some(ReplMsg::Heartbeat {
                epoch: 1,
                commit_seq: 7
            })
        );
    }

    #[test]
    fn implausible_length_is_desync() {
        let mut buf = MsgBuf::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        buf.extend(&bytes);
        assert!(matches!(buf.next_msg(), Err(ClusterError::Desynced { .. })));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_protocol_errors() {
        let mut body = vec![42u8];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut buf = MsgBuf::new();
        buf.extend(&frame);
        assert!(matches!(buf.next_msg(), Err(ClusterError::Protocol { .. })));

        body = vec![TAG_STATUS, 0xEE];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        let mut buf = MsgBuf::new();
        buf.extend(&frame);
        assert!(matches!(buf.next_msg(), Err(ClusterError::Protocol { .. })));
    }
}
