//! Deterministic in-process fault injection for node links.
//!
//! [`FaultProxy`] is a plain TCP forwarder that sits between two nodes
//! in tests. Faults are described by [`LinkFaultSpec`] and applied only
//! on the upstream→downstream direction (the direction the replication
//! stream flows), deterministically: a given spec always mangles the
//! same bytes, so failures found under the proxy reproduce exactly.

use crate::error::Result;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do to the bytes flowing upstream→downstream.
#[derive(Debug, Clone, Default)]
pub struct LinkFaultSpec {
    /// Seed for any future randomized behaviour; kept in the spec so a
    /// failing test prints everything needed to reproduce it.
    pub seed: u64,
    /// Sever the first accepted connection after forwarding exactly this
    /// many bytes. Later connections pass clean — this models a torn
    /// stream followed by a successful reconnect.
    pub cut_after_bytes: Option<u64>,
    /// XOR the byte at this absolute forwarded offset with `0xFF`, once.
    pub corrupt_byte: Option<u64>,
    /// Sleep this long before forwarding each chunk.
    pub delay_per_chunk: Option<Duration>,
    /// Forward the bytes in `[start, end)` (absolute offsets) twice.
    pub duplicate_range: Option<(u64, u64)>,
}

impl LinkFaultSpec {
    /// A spec that forwards everything untouched.
    pub fn clean() -> Self {
        Self::default()
    }
}

/// In-process TCP proxy with deterministic fault injection.
pub struct FaultProxy {
    addr: String,
    shutdown: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy listening on an ephemeral localhost port, relaying
    /// every accepted connection to `upstream` with `spec`'s faults
    /// applied to the upstream→downstream byte stream.
    pub fn start(upstream: &str, spec: LinkFaultSpec) -> Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let upstream = upstream.to_string();
        let stop = Arc::clone(&shutdown);
        let count = Arc::clone(&forwarded);
        let handle = std::thread::Builder::new()
            .name("fault-proxy".into())
            .spawn(move || {
                let mut first_conn = true;
                loop {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    match listener.accept() {
                        Ok((client, _)) => {
                            let spec = if first_conn {
                                spec.clone()
                            } else {
                                // Only the first connection is faulted;
                                // reconnects see a clean link.
                                LinkFaultSpec {
                                    delay_per_chunk: spec.delay_per_chunk,
                                    ..LinkFaultSpec::clean()
                                }
                            };
                            first_conn = false;
                            let upstream = upstream.clone();
                            let stop = Arc::clone(&stop);
                            let count = Arc::clone(&count);
                            std::thread::spawn(move || {
                                let _ = relay(client, &upstream, &spec, &stop, &count);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn fault-proxy thread");
        Ok(Self {
            addr,
            shutdown,
            forwarded,
            handle: Some(handle),
        })
    }

    /// The proxy's listen address — hand this to the downstream node in
    /// place of the real upstream address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Total upstream→downstream bytes forwarded so far.
    pub fn bytes_forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Acquire)
    }

    /// Stops accepting and joins the acceptor thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Forwards `client` ↔ `upstream`. Client→upstream bytes pass clean;
/// upstream→client bytes go through the fault pipeline.
fn relay(
    client: TcpStream,
    upstream: &str,
    spec: &LinkFaultSpec,
    stop: &Arc<AtomicBool>,
    forwarded: &Arc<AtomicU64>,
) -> std::io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    let mut client_rd = client.try_clone()?;
    let mut server_wr = server.try_clone()?;
    let stop_up = Arc::clone(stop);
    // Clean direction: follower→leader (acks, re-requests, hellos).
    let up = std::thread::spawn(move || {
        let mut chunk = [0u8; 4096];
        loop {
            if stop_up.load(Ordering::Acquire) {
                return;
            }
            match client_rd.read(&mut chunk) {
                Ok(0) | Err(_) => {
                    let _ = server_wr.shutdown(Shutdown::Write);
                    return;
                }
                Ok(n) => {
                    if server_wr.write_all(&chunk[..n]).is_err() {
                        return;
                    }
                }
            }
        }
    });

    // Faulted direction: leader→follower (the replication stream).
    let mut server_rd = server;
    let mut client_wr = client;
    let mut offset: u64 = 0;
    let mut chunk = [0u8; 4096];
    'faulted: loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let n = match server_rd.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(delay) = spec.delay_per_chunk {
            std::thread::sleep(delay);
        }
        let mut bytes = chunk[..n].to_vec();
        if let Some(at) = spec.corrupt_byte {
            if at >= offset && at < offset + n as u64 {
                bytes[(at - offset) as usize] ^= 0xFF;
            }
        }
        let mut emit: Vec<u8> = Vec::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            let abs = offset + i as u64;
            if let Some(cut) = spec.cut_after_bytes {
                if abs >= cut {
                    if !emit.is_empty() {
                        let _ = client_wr.write_all(&emit);
                        forwarded.fetch_add(emit.len() as u64, Ordering::Release);
                    }
                    let _ = client_wr.shutdown(Shutdown::Both);
                    let _ = server_rd.shutdown(Shutdown::Both);
                    break 'faulted;
                }
            }
            emit.push(*b);
            if let Some((start, end)) = spec.duplicate_range {
                if abs >= start && abs < end {
                    emit.push(*b);
                }
            }
        }
        if client_wr.write_all(&emit).is_err() {
            break;
        }
        forwarded.fetch_add(emit.len() as u64, Ordering::Release);
        offset += n as u64;
    }
    let _ = client_wr.shutdown(Shutdown::Write);
    let _ = up.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// One-shot echo upstream: accepts a connection, reads until EOF is
    /// not required — echoes each chunk back.
    fn echo_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().take(3) {
                let Ok(mut stream) = stream else { return };
                std::thread::spawn(move || {
                    let mut chunk = [0u8; 1024];
                    loop {
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => {
                                if stream.write_all(&chunk[..n]).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_spec_forwards_bytes_untouched() {
        let (addr, _h) = echo_server();
        let proxy = FaultProxy::start(&addr, LinkFaultSpec::clean()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello through the proxy").unwrap();
        let mut got = [0u8; 23];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello through the proxy");
    }

    #[test]
    fn corrupt_byte_flips_exactly_one_byte_at_the_offset() {
        let (addr, _h) = echo_server();
        let spec = LinkFaultSpec {
            corrupt_byte: Some(4),
            ..LinkFaultSpec::clean()
        };
        let proxy = FaultProxy::start(&addr, spec).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(&[0u8; 10]).unwrap();
        let mut got = [0u8; 10];
        conn.read_exact(&mut got).unwrap();
        let mut want = [0u8; 10];
        want[4] = 0xFF;
        assert_eq!(got, want);
    }

    #[test]
    fn cut_severs_first_connection_then_reconnect_is_clean() {
        let (addr, _h) = echo_server();
        let spec = LinkFaultSpec {
            cut_after_bytes: Some(3),
            ..LinkFaultSpec::clean()
        };
        let proxy = FaultProxy::start(&addr, spec).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"abcdef").unwrap();
        let mut got = Vec::new();
        conn.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc", "link must die after exactly 3 bytes");

        // Second connection passes clean.
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"abcdef").unwrap();
        let mut got = [0u8; 6];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abcdef");
    }

    #[test]
    fn duplicate_range_repeats_those_bytes() {
        let (addr, _h) = echo_server();
        let spec = LinkFaultSpec {
            duplicate_range: Some((1, 3)),
            ..LinkFaultSpec::clean()
        };
        let proxy = FaultProxy::start(&addr, spec).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"abcd").unwrap();
        let mut got = [0u8; 6];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abbccd");
    }
}
