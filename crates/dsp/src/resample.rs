//! Rational-ratio polyphase resampling.
//!
//! The paper's EMG stream is sampled at 1000 Hz and must be down-sampled to
//! the motion-capture rate of 120 Hz (Sec. 5). 120/1000 reduces to 3/25, so
//! the resampler upsamples by `L = 3`, applies an anti-alias low-pass, and
//! decimates by `M = 25` — implemented in polyphase form so the filter only
//! ever computes the output samples that survive decimation.

use crate::error::{DspError, Result};
use crate::fir::{lowpass_fir, WindowKind};

/// Greatest common divisor (Euclid).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A rational resampler converting by the factor `up / down`.
#[derive(Debug, Clone)]
pub struct Resampler {
    up: usize,
    down: usize,
    /// Anti-alias prototype filter (designed at the upsampled rate).
    taps: Vec<f64>,
}

impl Resampler {
    /// Creates a resampler for the ratio `up / down` (both ≥ 1). The ratio
    /// is reduced internally, so `Resampler::new(120, 1000)` builds the same
    /// engine as `Resampler::new(3, 25)`.
    ///
    /// `taps_per_phase` controls anti-alias quality; 24 gives > 60 dB
    /// stopband with a Hamming window and is the default used by
    /// [`Resampler::emg_to_mocap`].
    pub fn new(up: usize, down: usize, taps_per_phase: usize) -> Result<Self> {
        if up == 0 || down == 0 {
            return Err(DspError::InvalidArgument {
                reason: "resampling factors must be >= 1".into(),
            });
        }
        if taps_per_phase == 0 {
            return Err(DspError::InvalidArgument {
                reason: "taps_per_phase must be >= 1".into(),
            });
        }
        let g = gcd(up, down);
        let (up, down) = (up / g, down / g);
        if up == 1 && down == 1 {
            return Ok(Self {
                up,
                down,
                taps: vec![1.0],
            });
        }
        // Cutoff at the tighter of the two Nyquist limits, relative to the
        // upsampled rate fs*up; leave a 10% transition margin.
        let cutoff = 0.5 / up.max(down) as f64 * 0.9;
        let mut n_taps = taps_per_phase * up.max(down);
        if n_taps % 2 == 0 {
            n_taps += 1;
        }
        let mut taps = lowpass_fir(n_taps, cutoff, WindowKind::Hamming)?;
        // Compensate the 1/L amplitude loss of zero-stuffing upsampling.
        for t in &mut taps {
            *t *= up as f64;
        }
        Ok(Self { up, down, taps })
    }

    /// The paper's EMG→mocap conversion: 1000 Hz → 120 Hz (ratio 3/25).
    pub fn emg_to_mocap() -> Self {
        // analyze: allow(panic-free-libs) constant arguments, validated by unit test
        Self::new(120, 1000, 24).expect("static design parameters are valid")
    }

    /// Reduced upsampling factor.
    pub fn up(&self) -> usize {
        self.up
    }

    /// Reduced downsampling factor.
    pub fn down(&self) -> usize {
        self.down
    }

    /// Number of prototype filter taps.
    pub fn num_taps(&self) -> usize {
        self.taps.len()
    }

    /// Resamples a whole signal.
    ///
    /// Output length is `ceil(len * up / down)`; group delay of the
    /// anti-alias filter is compensated so the output is time-aligned with
    /// the input (edge samples are zero-padded).
    pub fn resample(&self, x: &[f64]) -> Vec<f64> {
        if self.up == 1 && self.down == 1 {
            return x.to_vec();
        }
        let out_len = (x.len() * self.up).div_ceil(self.down);
        let delay = (self.taps.len() - 1) / 2; // group delay at upsampled rate
        let mut y = Vec::with_capacity(out_len);
        for m in 0..out_len {
            // Index of this output sample on the upsampled grid, shifted so
            // the linear-phase delay is compensated.
            let t = m * self.down + delay;
            // y_up[t] = Σ_k h[k] · x_up[t−k], where x_up[j] = x[j/L] when
            // L | j. Only k with (t−k) ≡ 0 (mod L) contribute.
            let mut acc = 0.0;
            let phase = t % self.up;
            let mut k = phase; // smallest k ≥ 0 with (t−k) divisible by up
            while k < self.taps.len() && k <= t {
                let j = (t - k) / self.up;
                if j < x.len() {
                    acc += self.taps[k] * x[j];
                }
                k += self.up;
            }
            y.push(acc);
        }
        y
    }
}

/// Integer-factor decimation with anti-alias filtering (convenience wrapper).
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>> {
    if factor == 0 {
        return Err(DspError::InvalidArgument {
            reason: "decimation factor must be >= 1".into(),
        });
    }
    Ok(Resampler::new(1, factor, 24)?.resample(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn ratio_is_reduced() {
        let r = Resampler::new(120, 1000, 24).unwrap();
        assert_eq!(r.up(), 3);
        assert_eq!(r.down(), 25);
        assert!(r.num_taps() > 100);
    }

    #[test]
    fn identity_ratio_passthrough() {
        let r = Resampler::new(5, 5, 8).unwrap();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(r.resample(&x), x);
    }

    #[test]
    fn output_length_is_ceil_scaled() {
        let r = Resampler::emg_to_mocap();
        let x = vec![0.0; 1000]; // 1 second at 1000 Hz
        let y = r.resample(&x);
        assert_eq!(y.len(), 120); // 1 second at 120 Hz
        let x2 = vec![0.0; 1500];
        assert_eq!(r.resample(&x2).len(), 180);
    }

    #[test]
    fn dc_preserved() {
        let r = Resampler::emg_to_mocap();
        let x = vec![2.5; 2000];
        let y = r.resample(&x);
        // Away from the edges, DC must come through at unit gain.
        for &v in &y[40..y.len() - 40] {
            assert!((v - 2.5).abs() < 1e-3, "{v}");
        }
    }

    #[test]
    fn low_frequency_sine_survives() {
        // 10 Hz sine at 1000 Hz → downsample to 120 Hz; amplitude preserved.
        let fs_in = 1000.0;
        let x: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * 10.0 * i as f64 / fs_in).sin())
            .collect();
        let r = Resampler::emg_to_mocap();
        let y = r.resample(&x);
        let mid = &y[100..y.len() - 100];
        let amp = mid.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!((amp - 1.0).abs() < 0.02, "amplitude {amp}");
    }

    #[test]
    fn resampled_sine_frequency_is_correct() {
        // Count zero crossings of a 5 Hz sine after 1000→120 Hz conversion.
        let fs_in = 1000.0;
        let seconds = 4.0;
        let x: Vec<f64> = (0..(fs_in * seconds) as usize)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / fs_in).sin())
            .collect();
        let y = Resampler::emg_to_mocap().resample(&x);
        let crossings = y
            .windows(2)
            .filter(|w| (w[0] <= 0.0) != (w[1] <= 0.0))
            .count();
        // 5 Hz for 4 s → 20 cycles → ~40 crossings.
        assert!((38..=42).contains(&crossings), "got {crossings} crossings");
    }

    #[test]
    fn aliasing_is_suppressed() {
        // A 55 Hz tone is just below the 60 Hz output Nyquist and must pass;
        // a 400 Hz tone would alias into the output band and must be killed.
        let fs_in = 1000.0;
        let n = 5000;
        let tone = |f: f64| -> Vec<f64> {
            (0..n)
                .map(|i| (2.0 * PI * f * i as f64 / fs_in).sin())
                .collect()
        };
        let r = Resampler::emg_to_mocap();
        let pass = r.resample(&tone(40.0));
        let alias = r.resample(&tone(400.0));
        let amp = |v: &[f64]| {
            v[60..v.len() - 60]
                .iter()
                .fold(0.0_f64, |m, x| m.max(x.abs()))
        };
        assert!(amp(&pass) > 0.8, "passband tone lost: {}", amp(&pass));
        assert!(amp(&alias) < 0.02, "alias leak: {}", amp(&alias));
    }

    #[test]
    fn upsampling_interpolates() {
        let r = Resampler::new(4, 1, 16).unwrap();
        let fs_in = 100.0;
        let x: Vec<f64> = (0..400)
            .map(|i| (2.0 * PI * 3.0 * i as f64 / fs_in).sin())
            .collect();
        let y = r.resample(&x);
        assert_eq!(y.len(), 1600);
        let amp = y[200..1400].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!((amp - 1.0).abs() < 0.02, "{amp}");
    }

    #[test]
    fn decimate_convenience() {
        let x = vec![1.0; 1000];
        let y = decimate(&x, 10).unwrap();
        assert_eq!(y.len(), 100);
        assert!((y[50] - 1.0).abs() < 1e-3);
        assert!(decimate(&x, 0).is_err());
    }

    #[test]
    fn invalid_factors_rejected() {
        assert!(Resampler::new(0, 5, 8).is_err());
        assert!(Resampler::new(5, 0, 8).is_err());
        assert!(Resampler::new(3, 25, 0).is_err());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let r = Resampler::emg_to_mocap();
        assert!(r.resample(&[]).is_empty());
    }
}
