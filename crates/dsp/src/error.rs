//! Error types for signal-processing operations.

use std::fmt;

/// Errors produced by `kinemyo-dsp` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// A filter-design parameter was out of range (e.g. cutoff ≥ Nyquist).
    InvalidDesign {
        /// Explanation of the design constraint that was violated.
        reason: String,
    },
    /// The input signal is empty or too short for the requested operation.
    SignalTooShort {
        /// The operation that needed more samples.
        op: &'static str,
        /// Number of samples required.
        needed: usize,
        /// Number of samples provided.
        got: usize,
    },
    /// A rate or size argument was invalid (zero, negative, non-finite).
    InvalidArgument {
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidDesign { reason } => write!(f, "invalid filter design: {reason}"),
            DspError::SignalTooShort { op, needed, got } => {
                write!(f, "{op} needs at least {needed} samples, got {got}")
            }
            DspError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for DspError {}

/// Result alias for DSP operations.
pub type Result<T> = std::result::Result<T, DspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DspError::InvalidDesign {
            reason: "cutoff above Nyquist".into()
        }
        .to_string()
        .contains("Nyquist"));
        assert!(DspError::SignalTooShort {
            op: "filtfilt",
            needed: 10,
            got: 2
        }
        .to_string()
        .contains("at least 10"));
        assert!(DspError::InvalidArgument {
            reason: "zero rate".into()
        }
        .to_string()
        .contains("zero rate"));
    }
}
