//! # kinemyo-dsp
//!
//! Signal-processing substrate for the `kinemyo` workspace — everything the
//! paper's acquisition and conditioning chain (Delsys Myomonitor + MATLAB,
//! Sec. 5) does to a raw signal, implemented from scratch:
//!
//! * [`biquad`] — second-order IIR sections with RBJ cookbook designs;
//! * [`butterworth`] — Butterworth low/high/band-pass SOS cascades,
//!   including [`butterworth::emg_bandpass`] (the paper's 20–450 Hz stage);
//! * [`envelope`] — full-wave rectification, moving statistics, the EMG
//!   linear envelope;
//! * [`resample`] — polyphase rational resampling (1000 Hz → 120 Hz is
//!   ratio 3/25);
//! * [`filtfilt`] — zero-phase forward–backward filtering;
//! * [`fir`] — windowed-sinc FIR design;
//! * [`window`] — tumbling/sliding window segmentation (50–200 ms windows);
//! * [`fft`] — radix-2 FFT with EMG spectral descriptors (median/mean
//!   frequency);
//! * [`stft`] — spectrograms and time-resolved median-frequency tracks
//!   (the canonical EMG fatigue marker, paper Sec. 7).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom used throughout this
// workspace: `x <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod biquad;
pub mod butterworth;
pub mod envelope;
pub mod error;
pub mod fft;
pub mod filtfilt;
pub mod fir;
pub mod resample;
pub mod stft;
pub mod window;

pub use biquad::{BiquadCoeffs, SosFilter};
pub use error::{DspError, Result};
pub use resample::Resampler;
pub use window::{ms_to_samples, samples_to_ms, TailPolicy, WindowSpec};

#[cfg(test)]
mod proptests {
    use crate::envelope::{full_wave_rectify, moving_average, moving_rms};
    use crate::window::{TailPolicy, WindowSpec};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn rectified_signal_is_nonnegative(xs in proptest::collection::vec(-1e6..1e6f64, 0..200)) {
            for v in full_wave_rectify(&xs) {
                prop_assert!(v >= 0.0);
            }
        }

        #[test]
        fn moving_average_bounded_by_extremes(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..100),
            len in 1usize..20,
        ) {
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in moving_average(&xs, len).unwrap() {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        #[test]
        fn moving_rms_nonnegative_and_bounded(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..100),
            len in 1usize..20,
        ) {
            let hi = xs.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            for v in moving_rms(&xs, len).unwrap() {
                prop_assert!(v >= 0.0 && v <= hi + 1e-6);
            }
        }

        #[test]
        fn tumbling_windows_partition_prefix(
            len in 1usize..30,
            signal_len in 0usize..300,
        ) {
            let w = WindowSpec::tumbling(len).unwrap();
            let ranges = w.ranges(signal_len);
            // Consecutive, non-overlapping, all full-length.
            let mut expected_start = 0;
            for (s, e) in &ranges {
                prop_assert_eq!(*s, expected_start);
                prop_assert_eq!(e - s, len);
                expected_start = *e;
            }
            // They cover all but a tail shorter than `len`.
            prop_assert!(signal_len - expected_start < len);
        }

        #[test]
        fn keep_tail_covers_everything(
            len in 1usize..30,
            signal_len in 1usize..300,
        ) {
            let w = WindowSpec::new(len, len, TailPolicy::Keep).unwrap();
            let ranges = w.ranges(signal_len);
            let covered: usize = ranges.iter().map(|(s, e)| e - s).sum();
            prop_assert_eq!(covered, signal_len);
        }

        #[test]
        fn resampler_output_length_formula(
            n in 0usize..2000,
        ) {
            let r = crate::resample::Resampler::emg_to_mocap();
            let x = vec![0.0; n];
            let expected = (n * 3).div_ceil(25);
            prop_assert_eq!(r.resample(&x).len(), expected);
        }
    }
}
