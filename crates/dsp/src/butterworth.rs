//! Butterworth filter design as second-order-section cascades.
//!
//! The Delsys Myomonitor band-passes surface EMG to 20–450 Hz before it is
//! rectified and down-sampled (paper Sec. 5); [`bandpass`] reproduces that
//! processing stage. Designs use the standard pole-pair quality factors
//! `Q_k = 1 / (2 cos θ_k)` with the RBJ bilinear biquads, which matches the
//! textbook Butterworth magnitude response to within the bilinear warping.

use crate::biquad::{BiquadCoeffs, SosFilter};
use crate::error::{DspError, Result};
use std::f64::consts::PI;

/// Quality factors of the pole pairs of an order-`n` Butterworth filter.
///
/// For order `n` there are `n / 2` conjugate pole pairs; odd orders have one
/// extra real pole handled as a first-order section.
fn butterworth_qs(order: usize) -> Vec<f64> {
    let pairs = order / 2;
    // Poles lie at s_k = −sin γ_k ± j·cos γ_k with γ_k = (2k+1)π/(2n); each
    // conjugate pair is a biquad with ω₀ = 1 and Q = 1/(2 sin γ_k). Odd
    // orders additionally have a real pole at s = −1 (first-order section).
    (0..pairs)
        .map(|k| {
            let gamma = PI * (2.0 * k as f64 + 1.0) / (2.0 * order as f64);
            1.0 / (2.0 * gamma.sin())
        })
        .collect()
}

fn check_order(order: usize) -> Result<()> {
    if order == 0 || order > 16 {
        return Err(DspError::InvalidDesign {
            reason: format!("Butterworth order must be in 1..=16, got {order}"),
        });
    }
    Ok(())
}

/// Designs an order-`order` Butterworth low-pass with cutoff `fc` Hz.
pub fn lowpass(order: usize, fc: f64, fs: f64) -> Result<SosFilter> {
    check_order(order)?;
    let mut sections = Vec::with_capacity(order / 2 + 1);
    for q in butterworth_qs(order) {
        sections.push(BiquadCoeffs::lowpass(fc, fs, q)?);
    }
    if order % 2 == 1 {
        sections.push(BiquadCoeffs::first_order_lowpass(fc, fs)?);
    }
    Ok(SosFilter::new(sections))
}

/// Designs an order-`order` Butterworth high-pass with cutoff `fc` Hz.
pub fn highpass(order: usize, fc: f64, fs: f64) -> Result<SosFilter> {
    check_order(order)?;
    let mut sections = Vec::with_capacity(order / 2 + 1);
    for q in butterworth_qs(order) {
        sections.push(BiquadCoeffs::highpass(fc, fs, q)?);
    }
    if order % 2 == 1 {
        sections.push(BiquadCoeffs::first_order_highpass(fc, fs)?);
    }
    Ok(SosFilter::new(sections))
}

/// Designs a wide-band band-pass as an order-`order` Butterworth high-pass
/// at `f_lo` cascaded with an order-`order` low-pass at `f_hi`.
///
/// For well-separated edges (the EMG band 20–450 Hz spans more than four
/// octaves) this per-edge construction is the standard practice and is what
/// commercial EMG front-ends implement.
pub fn bandpass(order: usize, f_lo: f64, f_hi: f64, fs: f64) -> Result<SosFilter> {
    if f_lo >= f_hi {
        return Err(DspError::InvalidDesign {
            reason: format!("band edges must satisfy f_lo < f_hi, got {f_lo} >= {f_hi}"),
        });
    }
    let hp = highpass(order, f_lo, fs)?;
    let lp = lowpass(order, f_hi, fs)?;
    let mut sections = hp.sections().to_vec();
    sections.extend_from_slice(lp.sections());
    Ok(SosFilter::new(sections))
}

/// The paper's EMG conditioning band-pass: 20–450 Hz at `fs` Hz, 4th order
/// per edge (Delsys Myomonitor's analog chain equivalent).
///
/// ```
/// let f = kinemyo_dsp::butterworth::emg_bandpass(1000.0).unwrap();
/// assert!(f.magnitude_at(2.0, 1000.0) < 0.01);          // drift rejected
/// assert!((f.magnitude_at(150.0, 1000.0) - 1.0).abs() < 0.02); // passband flat
/// ```
pub fn emg_bandpass(fs: f64) -> Result<SosFilter> {
    bandpass(4, 20.0, 450.0, fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 1000.0;

    #[test]
    fn q_values_match_textbook() {
        // Order 2: single pair with Q = 1/√2.
        let q2 = butterworth_qs(2);
        assert_eq!(q2.len(), 1);
        assert!((q2[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        // Order 4: Q = 1.3066, 0.5412 (γ = π/8, 3π/8).
        let q4 = butterworth_qs(4);
        assert!((q4[0] - 1.30656296).abs() < 1e-6);
        assert!((q4[1] - 0.54119610).abs() < 1e-6);
        // Order 3: single pair with Q = 1 plus a real pole.
        let q3 = butterworth_qs(3);
        assert_eq!(q3.len(), 1);
        assert!((q3[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_minus_3db_at_cutoff() {
        for order in [1, 2, 3, 4, 5, 8] {
            let f = lowpass(order, 100.0, FS).unwrap();
            let mag = f.magnitude_at(100.0, FS);
            assert!(
                (mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
                "order {order}: cutoff magnitude {mag}"
            );
            assert!((f.magnitude_at(0.0, FS) - 1.0).abs() < 1e-9);
            assert!(f.is_stable());
        }
    }

    #[test]
    fn lowpass_rolloff_steepens_with_order() {
        let m2 = lowpass(2, 100.0, FS).unwrap().magnitude_at(300.0, FS);
        let m4 = lowpass(4, 100.0, FS).unwrap().magnitude_at(300.0, FS);
        let m8 = lowpass(8, 100.0, FS).unwrap().magnitude_at(300.0, FS);
        assert!(m2 > m4 && m4 > m8, "{m2} > {m4} > {m8} expected");
        // Order-8 should be deeply attenuated 1.5 octaves above cutoff.
        assert!(m8 < 1e-3);
    }

    #[test]
    fn highpass_mirror_properties() {
        for order in [2, 4, 7] {
            let f = highpass(order, 100.0, FS).unwrap();
            assert!(f.magnitude_at(0.0, FS) < 1e-9);
            let mag = f.magnitude_at(100.0, FS);
            assert!(
                (mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
                "order {order}: cutoff magnitude {mag}"
            );
            assert!((f.magnitude_at(495.0, FS) - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn emg_bandpass_shape() {
        let f = emg_bandpass(FS).unwrap();
        // Passband nearly flat in the middle.
        assert!((f.magnitude_at(150.0, FS) - 1.0).abs() < 0.02);
        // Stopbands attenuated.
        assert!(f.magnitude_at(2.0, FS) < 0.01, "DC drift must be rejected");
        assert!(f.magnitude_at(499.0, FS) < 0.35); // close to Nyquist warping limit
                                                   // Band edges around -3 dB.
        assert!((f.magnitude_at(20.0, FS) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!(f.is_stable());
    }

    #[test]
    fn bandpass_rejects_inverted_edges() {
        assert!(bandpass(4, 450.0, 20.0, FS).is_err());
        assert!(bandpass(0, 20.0, 450.0, FS).is_err());
        assert!(bandpass(20, 20.0, 450.0, FS).is_err());
    }

    #[test]
    fn dc_is_blocked_by_bandpass_in_time_domain() {
        let mut f = emg_bandpass(FS).unwrap();
        // Constant (DC) input should decay to ~0.
        let y = f.process(&vec![1.0; 3000]);
        let tail_max = y[2500..].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(tail_max < 1e-4, "DC leak: {tail_max}");
    }

    #[test]
    fn passband_sine_passes_in_time_domain() {
        let mut f = emg_bandpass(FS).unwrap();
        let x: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * 120.0 * i as f64 / FS).sin())
            .collect();
        let y = f.process(&x);
        let amp = y[3000..].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!((amp - 1.0).abs() < 0.05, "passband amplitude {amp}");
    }
}
