//! Rectification and envelope extraction for EMG conditioning.
//!
//! The paper's acquisition chain full-wave rectifies the band-passed EMG
//! before down-sampling to 120 Hz (Sec. 5). The moving-statistics helpers
//! here also back the streaming online classifier in `kinemyo`.

use crate::butterworth;
use crate::error::{DspError, Result};

/// Full-wave rectification: `|x|` per sample, in place.
pub fn full_wave_rectify_mut(signal: &mut [f64]) {
    for v in signal.iter_mut() {
        *v = v.abs();
    }
}

/// Full-wave rectification returning a new vector.
pub fn full_wave_rectify(signal: &[f64]) -> Vec<f64> {
    signal.iter().map(|v| v.abs()).collect()
}

/// Half-wave rectification: negative samples clamped to zero.
pub fn half_wave_rectify(signal: &[f64]) -> Vec<f64> {
    signal.iter().map(|v| v.max(0.0)).collect()
}

/// Centered-causal moving average with window `len` (output aligned to the
/// trailing edge; the first `len-1` outputs average the available prefix).
pub fn moving_average(signal: &[f64], len: usize) -> Result<Vec<f64>> {
    if len == 0 {
        return Err(DspError::InvalidArgument {
            reason: "moving_average window must be >= 1".into(),
        });
    }
    let mut out = Vec::with_capacity(signal.len());
    let mut acc = 0.0;
    for (i, &x) in signal.iter().enumerate() {
        acc += x;
        if i >= len {
            acc -= signal[i - len];
        }
        let n = (i + 1).min(len) as f64;
        out.push(acc / n);
    }
    Ok(out)
}

/// Trailing moving RMS with window `len`.
pub fn moving_rms(signal: &[f64], len: usize) -> Result<Vec<f64>> {
    if len == 0 {
        return Err(DspError::InvalidArgument {
            reason: "moving_rms window must be >= 1".into(),
        });
    }
    let mut out = Vec::with_capacity(signal.len());
    let mut acc = 0.0;
    for (i, &x) in signal.iter().enumerate() {
        acc += x * x;
        if i >= len {
            let old = signal[i - len];
            acc -= old * old;
        }
        // Clamp tiny negative residue from floating-point cancellation.
        let n = (i + 1).min(len) as f64;
        out.push((acc.max(0.0) / n).sqrt());
    }
    Ok(out)
}

/// Classic EMG "linear envelope": full-wave rectification followed by a
/// low-pass Butterworth smoother at `cutoff_hz`.
pub fn linear_envelope(signal: &[f64], fs: f64, cutoff_hz: f64) -> Result<Vec<f64>> {
    let rectified = full_wave_rectify(signal);
    let mut lp = butterworth::lowpass(2, cutoff_hz, fs)?;
    Ok(lp.process(&rectified))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_wave_makes_everything_nonnegative() {
        let x = [-1.0, 2.0, -3.0, 0.0];
        assert_eq!(full_wave_rectify(&x), vec![1.0, 2.0, 3.0, 0.0]);
        let mut y = x;
        full_wave_rectify_mut(&mut y);
        assert_eq!(y, [1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn half_wave_clamps_negatives() {
        assert_eq!(half_wave_rectify(&[-1.0, 2.0]), vec![0.0, 2.0]);
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let y = moving_average(&[3.0; 10], 4).unwrap();
        for v in y {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_known_values() {
        let y = moving_average(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(y, vec![1.0, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn moving_rms_of_sine_approaches_inv_sqrt2() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..2000)
            .map(|i| (2.0 * std::f64::consts::PI * 50.0 * i as f64 / fs).sin())
            .collect();
        let y = moving_rms(&x, 400).unwrap();
        let last = y[y.len() - 1];
        assert!(
            (last - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
            "{last}"
        );
    }

    #[test]
    fn zero_window_rejected() {
        assert!(moving_average(&[1.0], 0).is_err());
        assert!(moving_rms(&[1.0], 0).is_err());
    }

    #[test]
    fn linear_envelope_tracks_amplitude() {
        // Amplitude-modulated carrier: envelope should roughly track the
        // modulation (scaled by the rectified-sine mean 2/π).
        let fs = 1000.0;
        let n = 3000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let modulation = if t < 1.5 { 0.2 } else { 1.0 };
                modulation * (2.0 * std::f64::consts::PI * 100.0 * t).sin()
            })
            .collect();
        let env = linear_envelope(&x, fs, 6.0).unwrap();
        let early = env[1200];
        let late = env[2800];
        assert!(
            late > 3.0 * early,
            "envelope must rise: early={early} late={late}"
        );
    }

    #[test]
    fn moving_rms_handles_empty() {
        assert!(moving_rms(&[], 5).unwrap().is_empty());
        assert!(moving_average(&[], 5).unwrap().is_empty());
    }
}
