//! Sliding/tumbling window segmentation and time-unit conversions.
//!
//! The paper divides every motion (and its EMG streams) into consecutive
//! windows of 50–200 ms at 120 Hz and extracts one feature vector per
//! window (Sec. 3, Sec. 5). [`WindowSpec`] captures those parameters and
//! produces the `(start, end)` frame ranges.

use crate::error::{DspError, Result};
use serde::{Deserialize, Serialize};

/// Converts a duration in milliseconds to a whole number of samples at
/// `fs` Hz, rounding to nearest (minimum 1).
pub fn ms_to_samples(ms: f64, fs: f64) -> Result<usize> {
    if !(ms > 0.0) || !ms.is_finite() {
        return Err(DspError::InvalidArgument {
            reason: format!("window length must be positive ms, got {ms}"),
        });
    }
    if !(fs > 0.0) || !fs.is_finite() {
        return Err(DspError::InvalidArgument {
            reason: format!("sample rate must be positive, got {fs}"),
        });
    }
    Ok(((ms / 1000.0 * fs).round() as usize).max(1))
}

/// Converts a sample count at `fs` Hz to milliseconds.
pub fn samples_to_ms(samples: usize, fs: f64) -> f64 {
    samples as f64 / fs * 1000.0
}

/// How to treat the final partial window of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TailPolicy {
    /// Drop a trailing window shorter than the window length (default; a
    /// 50 ms tail of a 3 s motion carries negligible information and keeps
    /// every feature window the same length, which the SVD path needs).
    #[default]
    Drop,
    /// Keep the shorter trailing window.
    Keep,
}

/// A window segmentation plan: length and hop in samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    len: usize,
    hop: usize,
    tail: TailPolicy,
}

impl WindowSpec {
    /// Non-overlapping (tumbling) windows of `len` samples — the paper's
    /// segmentation.
    ///
    /// ```
    /// use kinemyo_dsp::WindowSpec;
    ///
    /// // 100 ms windows at the 120 Hz mocap rate = 12 frames each.
    /// let w = WindowSpec::from_ms(100.0, 120.0).unwrap();
    /// assert_eq!(w.len(), 12);
    /// assert_eq!(w.ranges(30), vec![(0, 12), (12, 24)]); // 6-frame tail dropped
    /// ```
    pub fn tumbling(len: usize) -> Result<Self> {
        Self::new(len, len, TailPolicy::Drop)
    }

    /// General windows: `len` samples advancing by `hop` each step.
    pub fn new(len: usize, hop: usize, tail: TailPolicy) -> Result<Self> {
        if len == 0 || hop == 0 {
            return Err(DspError::InvalidArgument {
                reason: format!("window len={len} and hop={hop} must be >= 1"),
            });
        }
        Ok(Self { len, hop, tail })
    }

    /// Tumbling windows from a duration in milliseconds at `fs` Hz.
    pub fn from_ms(ms: f64, fs: f64) -> Result<Self> {
        Self::tumbling(ms_to_samples(ms, fs)?)
    }

    /// Window length in samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: construction guarantees `len >= 1` (provided so the
    /// `len` method follows the standard container convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Hop (stride) in samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Returns the `(start, end)` half-open ranges for a signal of
    /// `signal_len` samples.
    pub fn ranges(&self, signal_len: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < signal_len {
            let end = (start + self.len).min(signal_len);
            let full = end - start == self.len;
            if full || matches!(self.tail, TailPolicy::Keep) {
                out.push((start, end));
            }
            if !full {
                break;
            }
            start += self.hop;
        }
        out
    }

    /// Number of windows a signal of `signal_len` samples yields.
    pub fn count(&self, signal_len: usize) -> usize {
        self.ranges(signal_len).len()
    }

    /// Iterates the window contents of `signal` as slices.
    pub fn iter<'a>(&self, signal: &'a [f64]) -> impl Iterator<Item = &'a [f64]> + 'a {
        self.ranges(signal.len())
            .into_iter()
            .map(move |(s, e)| &signal[s..e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_conversion_paper_values() {
        // At the 120 Hz mocap rate: 50 ms = 6 frames, 100 ms = 12,
        // 150 ms = 18, 200 ms = 24.
        assert_eq!(ms_to_samples(50.0, 120.0).unwrap(), 6);
        assert_eq!(ms_to_samples(100.0, 120.0).unwrap(), 12);
        assert_eq!(ms_to_samples(150.0, 120.0).unwrap(), 18);
        assert_eq!(ms_to_samples(200.0, 120.0).unwrap(), 24);
        // At the 1000 Hz EMG rate: 50 ms = 50 samples.
        assert_eq!(ms_to_samples(50.0, 1000.0).unwrap(), 50);
    }

    #[test]
    fn conversion_roundtrip() {
        let s = ms_to_samples(100.0, 120.0).unwrap();
        assert!((samples_to_ms(s, 120.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_rejects_bad_input() {
        assert!(ms_to_samples(0.0, 120.0).is_err());
        assert!(ms_to_samples(-5.0, 120.0).is_err());
        assert!(ms_to_samples(f64::NAN, 120.0).is_err());
        assert!(ms_to_samples(100.0, 0.0).is_err());
    }

    #[test]
    fn minimum_one_sample() {
        assert_eq!(ms_to_samples(0.1, 120.0).unwrap(), 1);
    }

    #[test]
    fn tumbling_ranges() {
        let w = WindowSpec::tumbling(4).unwrap();
        assert_eq!(w.ranges(12), vec![(0, 4), (4, 8), (8, 12)]);
        assert_eq!(w.count(12), 3);
    }

    #[test]
    fn tail_policy_drop_vs_keep() {
        let drop = WindowSpec::new(5, 5, TailPolicy::Drop).unwrap();
        assert_eq!(drop.ranges(12), vec![(0, 5), (5, 10)]);
        let keep = WindowSpec::new(5, 5, TailPolicy::Keep).unwrap();
        assert_eq!(keep.ranges(12), vec![(0, 5), (5, 10), (10, 12)]);
    }

    #[test]
    fn overlapping_windows() {
        let w = WindowSpec::new(4, 2, TailPolicy::Drop).unwrap();
        assert_eq!(w.ranges(8), vec![(0, 4), (2, 6), (4, 8)]);
    }

    #[test]
    fn short_signal_yields_nothing_or_tail() {
        let drop = WindowSpec::tumbling(10).unwrap();
        assert!(drop.ranges(5).is_empty());
        let keep = WindowSpec::new(10, 10, TailPolicy::Keep).unwrap();
        assert_eq!(keep.ranges(5), vec![(0, 5)]);
        assert!(drop.ranges(0).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_tail_effect() {
        let drop = WindowSpec::new(4, 4, TailPolicy::Drop).unwrap();
        let keep = WindowSpec::new(4, 4, TailPolicy::Keep).unwrap();
        assert_eq!(drop.ranges(8), keep.ranges(8));
    }

    #[test]
    fn iter_yields_window_contents() {
        let signal: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let w = WindowSpec::tumbling(3).unwrap();
        let wins: Vec<&[f64]> = w.iter(&signal).collect();
        assert_eq!(wins.len(), 3);
        assert_eq!(wins[0], &[0.0, 1.0, 2.0]);
        assert_eq!(wins[2], &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn zero_len_or_hop_rejected() {
        assert!(WindowSpec::tumbling(0).is_err());
        assert!(WindowSpec::new(4, 0, TailPolicy::Drop).is_err());
    }
}
