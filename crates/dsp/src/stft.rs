//! Short-time Fourier analysis: spectrograms and time-resolved EMG
//! spectral descriptors.
//!
//! The paper lists muscle fatigue among the effects that "can cause the
//! purity of the biomedical signals" (Sec. 7). The canonical fatigue
//! marker is the downshift of the EMG median frequency over time — a
//! *time-resolved* quantity, computed here by sliding a windowed FFT
//! along the signal.

use crate::error::{DspError, Result};
use crate::fft::{fft_in_place, Complex};
use std::f64::consts::PI;

/// A magnitude spectrogram.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// Center time of each column, seconds.
    pub times_s: Vec<f64>,
    /// Frequency of each row, Hz.
    pub freqs_hz: Vec<f64>,
    /// Power values, indexed `[column][row]` (time-major).
    pub power: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// Number of time columns.
    pub fn num_frames(&self) -> usize {
        self.times_s.len()
    }

    /// Median frequency of time column `t`, or `None` for a silent column.
    pub fn median_frequency_at(&self, t: usize) -> Option<f64> {
        let column = self.power.get(t)?;
        let total: f64 = column.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut acc = 0.0;
        for (f, p) in self.freqs_hz.iter().zip(column) {
            acc += p;
            if acc >= total / 2.0 {
                return Some(*f);
            }
        }
        self.freqs_hz.last().copied()
    }

    /// Median-frequency trajectory over time: `(time_s, median_hz)` for
    /// every non-silent column.
    pub fn median_frequency_track(&self) -> Vec<(f64, f64)> {
        (0..self.num_frames())
            .filter_map(|t| self.median_frequency_at(t).map(|f| (self.times_s[t], f)))
            .collect()
    }
}

/// Computes the magnitude spectrogram of `signal` with Hann-windowed
/// segments of `window` samples (power of two) advancing by `hop`.
pub fn spectrogram(signal: &[f64], fs: f64, window: usize, hop: usize) -> Result<Spectrogram> {
    if !(fs > 0.0) {
        return Err(DspError::InvalidArgument {
            reason: format!("sample rate must be positive, got {fs}"),
        });
    }
    if window == 0 || !window.is_power_of_two() {
        return Err(DspError::InvalidArgument {
            reason: format!("window must be a power of two, got {window}"),
        });
    }
    if hop == 0 {
        return Err(DspError::InvalidArgument {
            reason: "hop must be >= 1".into(),
        });
    }
    if signal.len() < window {
        return Err(DspError::SignalTooShort {
            op: "spectrogram",
            needed: window,
            got: signal.len(),
        });
    }
    let half = window / 2;
    let hann: Vec<f64> = (0..window)
        .map(|i| 0.5 - 0.5 * (2.0 * PI * i as f64 / (window - 1) as f64).cos())
        .collect();
    let freqs_hz: Vec<f64> = (0..=half).map(|k| k as f64 * fs / window as f64).collect();

    let mut times_s = Vec::new();
    let mut power = Vec::new();
    let mut buf = vec![Complex::default(); window];
    let mut start = 0;
    while start + window <= signal.len() {
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = Complex::new(signal[start + i] * hann[i], 0.0);
        }
        fft_in_place(&mut buf)?;
        let column: Vec<f64> = buf.iter().take(half + 1).map(|c| c.norm_sq()).collect();
        times_s.push((start + half) as f64 / fs);
        power.push(column);
        start += hop;
    }
    Ok(Spectrogram {
        times_s,
        freqs_hz,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        let x = vec![0.0; 100];
        assert!(spectrogram(&x, 0.0, 64, 32).is_err());
        assert!(spectrogram(&x, 1000.0, 60, 32).is_err()); // not power of two
        assert!(spectrogram(&x, 1000.0, 64, 0).is_err());
        assert!(spectrogram(&x, 1000.0, 128, 32).is_err()); // too short
    }

    #[test]
    fn tone_appears_at_its_frequency_in_every_column() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * 125.0 * i as f64 / fs).sin())
            .collect();
        let sg = spectrogram(&x, fs, 256, 128).unwrap();
        assert!(sg.num_frames() > 20);
        for t in 0..sg.num_frames() {
            let mf = sg.median_frequency_at(t).unwrap();
            assert!((mf - 125.0).abs() < 10.0, "column {t}: median {mf}");
        }
    }

    #[test]
    fn chirp_median_frequency_rises() {
        // Linear chirp 50 → 300 Hz: the median-frequency track must rise.
        let fs = 1000.0;
        let n = 6000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let f = 50.0 + 250.0 * t / 6.0;
                (2.0 * PI * f * t).sin()
            })
            .collect();
        let sg = spectrogram(&x, fs, 256, 128).unwrap();
        let track = sg.median_frequency_track();
        let first = track[1].1;
        let last = track[track.len() - 2].1;
        assert!(last > first + 100.0, "chirp should rise: {first} → {last}");
    }

    #[test]
    fn silence_gives_no_median() {
        let x = vec![0.0; 1024];
        let sg = spectrogram(&x, 1000.0, 256, 128).unwrap();
        assert!(sg.median_frequency_at(0).is_none());
        assert!(sg.median_frequency_track().is_empty());
    }

    #[test]
    fn time_axis_is_monotone_and_scaled() {
        let x = vec![1.0; 2048];
        let sg = spectrogram(&x, 1000.0, 256, 256).unwrap();
        for w in sg.times_s.windows(2) {
            assert!((w[1] - w[0] - 0.256).abs() < 1e-9);
        }
        assert_eq!(sg.freqs_hz.len(), 129);
        assert_eq!(sg.freqs_hz[128], 500.0);
    }
}
