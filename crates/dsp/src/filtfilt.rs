//! Zero-phase forward–backward IIR filtering.
//!
//! Offline feature extraction should not shift the EMG envelope relative to
//! the motion-capture frames — a phase lag of even a few frames would smear
//! the synchronization the trigger hardware (paper Fig. 5) exists to
//! guarantee. `filtfilt` runs the filter forward and then backward so the
//! net phase response is zero, with reflected edge padding to suppress
//! start-up transients.

use crate::biquad::SosFilter;
use crate::error::{DspError, Result};

/// Applies `filter` forward and backward over `signal` with reflected
/// padding of `pad_len` samples on each side (clamped to `len − 1`).
///
/// The filter's internal state is reset before each pass.
pub fn filtfilt(filter: &mut SosFilter, signal: &[f64], pad_len: usize) -> Result<Vec<f64>> {
    if signal.len() < 2 {
        return Err(DspError::SignalTooShort {
            op: "filtfilt",
            needed: 2,
            got: signal.len(),
        });
    }
    let pad = pad_len.min(signal.len() - 1);

    // Odd (antisymmetric) reflection about the end points, the same padding
    // scipy's filtfilt uses: 2*x[0] − x[pad..1], signal, 2*x[last] − ...
    let mut padded = Vec::with_capacity(signal.len() + 2 * pad);
    let first = signal[0];
    for i in (1..=pad).rev() {
        padded.push(2.0 * first - signal[i]);
    }
    padded.extend_from_slice(signal);
    let last = signal[signal.len() - 1];
    for i in 1..=pad {
        padded.push(2.0 * last - signal[signal.len() - 1 - i]);
    }

    filter.reset();
    let mut forward = filter.process(&padded);
    forward.reverse();
    filter.reset();
    let mut backward = filter.process(&forward);
    backward.reverse();
    filter.reset();

    Ok(backward[pad..pad + signal.len()].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterworth;
    use std::f64::consts::PI;

    #[test]
    fn too_short_rejected() {
        let mut f = butterworth::lowpass(2, 10.0, 100.0).unwrap();
        assert!(filtfilt(&mut f, &[1.0], 10).is_err());
    }

    #[test]
    fn zero_phase_on_sine() {
        // A passband sine must come out essentially unshifted; a causal
        // single pass would delay it.
        let fs = 1000.0;
        let n = 2000;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / fs).sin())
            .collect();
        let mut f = butterworth::lowpass(4, 50.0, fs).unwrap();
        let y = filtfilt(&mut f, &x, 300).unwrap();
        // Compare against the input sample-by-sample away from the edges.
        let mut max_err = 0.0_f64;
        for i in 300..n - 300 {
            max_err = max_err.max((y[i] - x[i]).abs());
        }
        assert!(max_err < 0.01, "zero-phase error {max_err}");
    }

    #[test]
    fn squared_magnitude_response() {
        // filtfilt applies |H|² — a tone at the cutoff (−3 dB) should come
        // out at ~0.5 amplitude.
        let fs = 1000.0;
        let n = 4000;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 100.0 * i as f64 / fs).sin())
            .collect();
        let mut f = butterworth::lowpass(4, 100.0, fs).unwrap();
        let y = filtfilt(&mut f, &x, 500).unwrap();
        let amp = y[1000..3000].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!((amp - 0.5).abs() < 0.03, "amplitude {amp}");
    }

    #[test]
    fn constant_signal_unchanged_by_lowpass() {
        let mut f = butterworth::lowpass(4, 10.0, 100.0).unwrap();
        let x = vec![3.0; 100];
        let y = filtfilt(&mut f, &x, 60).unwrap();
        for v in &y {
            assert!((v - 3.0).abs() < 1e-5, "{v}");
        }
    }

    #[test]
    fn output_length_matches_input() {
        let mut f = butterworth::lowpass(2, 10.0, 100.0).unwrap();
        let x = vec![1.0; 57];
        assert_eq!(filtfilt(&mut f, &x, 1000).unwrap().len(), 57);
    }

    #[test]
    fn edge_transients_are_suppressed() {
        // Without padding, a big DC offset creates a start-up transient;
        // with reflection padding the edges stay near the signal value.
        let fs = 1000.0;
        let x = vec![10.0; 500];
        let mut f = butterworth::lowpass(4, 20.0, fs).unwrap();
        let y = filtfilt(&mut f, &x, 200).unwrap();
        assert!((y[0] - 10.0).abs() < 0.05, "left edge {}", y[0]);
        assert!((y[499] - 10.0).abs() < 0.05, "right edge {}", y[499]);
    }
}
