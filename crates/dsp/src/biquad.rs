//! Second-order IIR sections (biquads) with RBJ "Audio EQ Cookbook" designs.
//!
//! All higher-order filters in this crate are built as cascades of these
//! sections (second-order sections, SOS), which keeps high-order Butterworth
//! filters numerically stable — important for the 20–450 Hz EMG band-pass
//! running over minutes of 1 kHz signal.

use crate::error::{DspError, Result};
use std::f64::consts::PI;

/// Normalized biquad transfer-function coefficients:
///
/// `H(z) = (b0 + b1 z⁻¹ + b2 z⁻²) / (1 + a1 z⁻¹ + a2 z⁻²)`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiquadCoeffs {
    /// Numerator coefficient b₀.
    pub b0: f64,
    /// Numerator coefficient b₁.
    pub b1: f64,
    /// Numerator coefficient b₂.
    pub b2: f64,
    /// Denominator coefficient a₁ (a₀ normalized to 1).
    pub a1: f64,
    /// Denominator coefficient a₂.
    pub a2: f64,
}

impl BiquadCoeffs {
    /// The identity (pass-through) section.
    pub const IDENTITY: BiquadCoeffs = BiquadCoeffs {
        b0: 1.0,
        b1: 0.0,
        b2: 0.0,
        a1: 0.0,
        a2: 0.0,
    };

    /// Validates design inputs shared by the RBJ cookbook constructors.
    fn check(f0: f64, fs: f64, q: f64) -> Result<(f64, f64)> {
        if !(fs > 0.0) || !fs.is_finite() {
            return Err(DspError::InvalidArgument {
                reason: format!("sample rate must be positive and finite, got {fs}"),
            });
        }
        if !(f0 > 0.0) || f0 >= fs / 2.0 {
            return Err(DspError::InvalidDesign {
                reason: format!("frequency {f0} Hz must lie in (0, Nyquist={}) Hz", fs / 2.0),
            });
        }
        if !(q > 0.0) || !q.is_finite() {
            return Err(DspError::InvalidDesign {
                reason: format!("Q must be positive and finite, got {q}"),
            });
        }
        let w0 = 2.0 * PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        Ok((w0, alpha))
    }

    /// RBJ low-pass biquad with cutoff `f0` (Hz) and quality factor `q`.
    pub fn lowpass(f0: f64, fs: f64, q: f64) -> Result<Self> {
        let (w0, alpha) = Self::check(f0, fs, q)?;
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: (1.0 - cw) / 2.0 / a0,
            b1: (1.0 - cw) / a0,
            b2: (1.0 - cw) / 2.0 / a0,
            a1: (-2.0 * cw) / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// RBJ high-pass biquad with cutoff `f0` (Hz) and quality factor `q`.
    pub fn highpass(f0: f64, fs: f64, q: f64) -> Result<Self> {
        let (w0, alpha) = Self::check(f0, fs, q)?;
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: (1.0 + cw) / 2.0 / a0,
            b1: -(1.0 + cw) / a0,
            b2: (1.0 + cw) / 2.0 / a0,
            a1: (-2.0 * cw) / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// RBJ band-pass biquad (constant 0 dB peak gain) centred at `f0`.
    pub fn bandpass(f0: f64, fs: f64, q: f64) -> Result<Self> {
        let (w0, alpha) = Self::check(f0, fs, q)?;
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: (-2.0 * cw) / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// RBJ notch biquad centred at `f0` (e.g. 60 Hz power-line removal).
    pub fn notch(f0: f64, fs: f64, q: f64) -> Result<Self> {
        let (w0, alpha) = Self::check(f0, fs, q)?;
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: 1.0 / a0,
            b1: (-2.0 * cw) / a0,
            b2: 1.0 / a0,
            a1: (-2.0 * cw) / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// First-order low-pass expressed as a degenerate biquad (for odd-order
    /// Butterworth cascades).
    pub fn first_order_lowpass(f0: f64, fs: f64) -> Result<Self> {
        let (w0, _) = Self::check(f0, fs, 1.0)?;
        // Bilinear-transformed one-pole low-pass.
        let k = (w0 / 2.0).tan();
        let a0 = k + 1.0;
        Ok(Self {
            b0: k / a0,
            b1: k / a0,
            b2: 0.0,
            a1: (k - 1.0) / a0,
            a2: 0.0,
        })
    }

    /// First-order high-pass expressed as a degenerate biquad.
    pub fn first_order_highpass(f0: f64, fs: f64) -> Result<Self> {
        let (w0, _) = Self::check(f0, fs, 1.0)?;
        let k = (w0 / 2.0).tan();
        let a0 = k + 1.0;
        Ok(Self {
            b0: 1.0 / a0,
            b1: -1.0 / a0,
            b2: 0.0,
            a1: (k - 1.0) / a0,
            a2: 0.0,
        })
    }

    /// Complex frequency response `H(e^{jω})` at normalized angular
    /// frequency `w` (radians/sample). Returns `(re, im)`.
    pub fn response_at(&self, w: f64) -> (f64, f64) {
        // Evaluate numerator and denominator at z = e^{jw}.
        let (c1, s1) = (w.cos(), -w.sin()); // z^-1
        let (c2, s2) = ((2.0 * w).cos(), -(2.0 * w).sin()); // z^-2
        let num_re = self.b0 + self.b1 * c1 + self.b2 * c2;
        let num_im = self.b1 * s1 + self.b2 * s2;
        let den_re = 1.0 + self.a1 * c1 + self.a2 * c2;
        let den_im = self.a1 * s1 + self.a2 * s2;
        let den_mag2 = den_re * den_re + den_im * den_im;
        (
            (num_re * den_re + num_im * den_im) / den_mag2,
            (num_im * den_re - num_re * den_im) / den_mag2,
        )
    }

    /// Magnitude response at frequency `f` (Hz) for sample rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let (re, im) = self.response_at(2.0 * PI * f / fs);
        (re * re + im * im).sqrt()
    }

    /// True when both poles lie strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury stability criterion for a 2nd-order polynomial z² + a1 z + a2.
        self.a2 < 1.0 && (self.a1.abs() < 1.0 + self.a2)
    }
}

/// Runtime state for one biquad in Direct Form II transposed.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiquadState {
    s1: f64,
    s2: f64,
}

impl BiquadState {
    /// Processes one sample through the section.
    #[inline]
    pub fn process(&mut self, c: &BiquadCoeffs, x: f64) -> f64 {
        let y = c.b0 * x + self.s1;
        self.s1 = c.b1 * x - c.a1 * y + self.s2;
        self.s2 = c.b2 * x - c.a2 * y;
        y
    }

    /// Resets the internal state to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A cascade of biquad sections with per-section state — the standard
/// "second-order sections" filter realization.
#[derive(Debug, Clone)]
pub struct SosFilter {
    sections: Vec<BiquadCoeffs>,
    states: Vec<BiquadState>,
}

impl SosFilter {
    /// Builds a cascade from coefficient sections.
    pub fn new(sections: Vec<BiquadCoeffs>) -> Self {
        let states = vec![BiquadState::default(); sections.len()];
        Self { sections, states }
    }

    /// Number of second-order sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Borrow the coefficient sections.
    pub fn sections(&self) -> &[BiquadCoeffs] {
        &self.sections
    }

    /// Processes one sample, updating internal state.
    #[inline]
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let mut y = x;
        for (c, s) in self.sections.iter().zip(self.states.iter_mut()) {
            y = s.process(c, y);
        }
        y
    }

    /// Filters a whole signal, returning a new vector (state carries over
    /// from any previous calls; use [`SosFilter::reset`] between signals).
    pub fn process(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Zeroes all internal state.
    pub fn reset(&mut self) {
        for s in &mut self.states {
            s.reset();
        }
    }

    /// Cascade magnitude response at `f` Hz given sample rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        self.sections
            .iter()
            .map(|c| c.magnitude_at(f, fs))
            .product()
    }

    /// True when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(BiquadCoeffs::is_stable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_dc_gain_is_unity() {
        let c = BiquadCoeffs::lowpass(100.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert!((c.magnitude_at(0.0, 1000.0) - 1.0).abs() < 1e-9);
        assert!(c.magnitude_at(499.0, 1000.0) < 0.05);
        assert!(c.is_stable());
    }

    #[test]
    fn highpass_blocks_dc() {
        let c = BiquadCoeffs::highpass(100.0, 1000.0, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert!(c.magnitude_at(0.0, 1000.0) < 1e-9);
        assert!((c.magnitude_at(480.0, 1000.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let c = BiquadCoeffs::bandpass(100.0, 1000.0, 2.0).unwrap();
        let peak = c.magnitude_at(100.0, 1000.0);
        assert!((peak - 1.0).abs() < 1e-6);
        assert!(c.magnitude_at(10.0, 1000.0) < 0.3);
        assert!(c.magnitude_at(450.0, 1000.0) < 0.3);
    }

    #[test]
    fn notch_kills_center_frequency() {
        let c = BiquadCoeffs::notch(60.0, 1000.0, 30.0).unwrap();
        assert!(c.magnitude_at(60.0, 1000.0) < 1e-9);
        assert!((c.magnitude_at(10.0, 1000.0) - 1.0).abs() < 0.05);
        assert!((c.magnitude_at(200.0, 1000.0) - 1.0).abs() < 0.05);
    }

    #[test]
    fn first_order_sections() {
        let lp = BiquadCoeffs::first_order_lowpass(100.0, 1000.0).unwrap();
        assert!((lp.magnitude_at(0.0, 1000.0) - 1.0).abs() < 1e-9);
        // -3 dB at cutoff for first-order
        assert!((lp.magnitude_at(100.0, 1000.0) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        let hp = BiquadCoeffs::first_order_highpass(100.0, 1000.0).unwrap();
        assert!(hp.magnitude_at(0.0, 1000.0) < 1e-9);
        assert!((hp.magnitude_at(100.0, 1000.0) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
    }

    #[test]
    fn design_rejects_bad_parameters() {
        assert!(BiquadCoeffs::lowpass(600.0, 1000.0, 0.7).is_err()); // above Nyquist
        assert!(BiquadCoeffs::lowpass(-5.0, 1000.0, 0.7).is_err());
        assert!(BiquadCoeffs::lowpass(100.0, 0.0, 0.7).is_err());
        assert!(BiquadCoeffs::lowpass(100.0, 1000.0, 0.0).is_err());
        assert!(BiquadCoeffs::notch(100.0, 1000.0, f64::NAN).is_err());
    }

    #[test]
    fn identity_section_passes_through() {
        let mut f = SosFilter::new(vec![BiquadCoeffs::IDENTITY]);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(f.process(&x), x.to_vec());
    }

    #[test]
    fn filtering_sine_attenuation_matches_response() {
        // Filter a 200 Hz sine through a 50 Hz low-pass: steady-state
        // amplitude should match the theoretical magnitude response.
        let fs = 1000.0;
        let c = BiquadCoeffs::lowpass(50.0, fs, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        let mut f = SosFilter::new(vec![c]);
        let n = 4000;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 200.0 * i as f64 / fs).sin())
            .collect();
        let y = f.process(&x);
        // Measure steady-state amplitude over the last quarter.
        let tail = &y[3 * n / 4..];
        let amp = tail.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let expected = c.magnitude_at(200.0, fs);
        assert!(
            (amp - expected).abs() < 0.02,
            "measured {amp}, expected {expected}"
        );
    }

    #[test]
    fn cascade_magnitude_is_product() {
        let c1 = BiquadCoeffs::lowpass(100.0, 1000.0, 0.7).unwrap();
        let c2 = BiquadCoeffs::highpass(20.0, 1000.0, 0.7).unwrap();
        let f = SosFilter::new(vec![c1, c2]);
        let m = f.magnitude_at(60.0, 1000.0);
        let expected = c1.magnitude_at(60.0, 1000.0) * c2.magnitude_at(60.0, 1000.0);
        assert!((m - expected).abs() < 1e-12);
        assert!(f.is_stable());
        assert_eq!(f.num_sections(), 2);
    }

    #[test]
    fn reset_clears_state() {
        let c = BiquadCoeffs::lowpass(50.0, 1000.0, 0.7).unwrap();
        let mut f = SosFilter::new(vec![c]);
        let y1 = f.process(&[1.0, 1.0, 1.0]);
        f.reset();
        let y2 = f.process(&[1.0, 1.0, 1.0]);
        assert_eq!(y1, y2);
    }

    #[test]
    fn stability_criterion() {
        let unstable = BiquadCoeffs {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: -2.1,
            a2: 1.2,
        };
        assert!(!unstable.is_stable());
    }
}
