//! Windowed-sinc FIR filter design and linear-phase filtering.
//!
//! Used by the rational resampler's anti-aliasing stage
//! ([`crate::resample`]) and available directly for linear-phase smoothing.

use crate::error::{DspError, Result};
use std::f64::consts::PI;

/// Window functions for FIR design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Rectangular (no) window — narrowest main lobe, worst sidelobes.
    Rectangular,
    /// Hamming window (−53 dB sidelobes) — the default for resampling.
    Hamming,
    /// Hann window (−44 dB sidelobes).
    Hann,
    /// Blackman window (−74 dB sidelobes) — widest main lobe.
    Blackman,
}

impl WindowKind {
    /// Evaluates the window at tap `n` of `len` taps.
    pub fn value(self, n: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            WindowKind::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
        }
    }
}

/// Designs a low-pass windowed-sinc FIR.
///
/// `cutoff` is the normalized cutoff in cycles/sample, in `(0, 0.5)`.
/// `taps` must be odd so the filter has an integer group delay of
/// `(taps−1)/2` samples. Coefficients are normalized to unit DC gain.
pub fn lowpass_fir(taps: usize, cutoff: f64, window: WindowKind) -> Result<Vec<f64>> {
    if taps < 3 || taps % 2 == 0 {
        return Err(DspError::InvalidDesign {
            reason: format!("FIR taps must be odd and >= 3, got {taps}"),
        });
    }
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::InvalidDesign {
            reason: format!("normalized cutoff must be in (0, 0.5), got {cutoff}"),
        });
    }
    let mid = (taps - 1) as f64 / 2.0;
    let mut h = Vec::with_capacity(taps);
    for n in 0..taps {
        let t = n as f64 - mid;
        let sinc = if t == 0.0 {
            2.0 * cutoff
        } else {
            (2.0 * PI * cutoff * t).sin() / (PI * t)
        };
        h.push(sinc * window.value(n, taps));
    }
    // Normalize DC gain to exactly 1.
    let sum: f64 = h.iter().sum();
    if sum.abs() < 1e-15 {
        return Err(DspError::InvalidDesign {
            reason: "degenerate FIR design (zero DC gain)".into(),
        });
    }
    for v in &mut h {
        *v /= sum;
    }
    Ok(h)
}

/// Direct-form FIR filtering (causal, zero-padded edges): `y[n] = Σ h[k] x[n−k]`.
pub fn fir_filter(h: &[f64], x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; x.len()];
    for n in 0..x.len() {
        let kmax = h.len().min(n + 1);
        let mut acc = 0.0;
        for k in 0..kmax {
            acc += h[k] * x[n - k];
        }
        y[n] = acc;
    }
    y
}

/// Magnitude response of an FIR at normalized frequency `f` (cycles/sample).
pub fn fir_magnitude(h: &[f64], f: f64) -> f64 {
    let w = 2.0 * PI * f;
    let (mut re, mut im) = (0.0, 0.0);
    for (k, &c) in h.iter().enumerate() {
        re += c * (w * k as f64).cos();
        im -= c * (w * k as f64).sin();
    }
    (re * re + im * im).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_constraints() {
        assert!(lowpass_fir(4, 0.2, WindowKind::Hamming).is_err()); // even
        assert!(lowpass_fir(1, 0.2, WindowKind::Hamming).is_err()); // too short
        assert!(lowpass_fir(11, 0.6, WindowKind::Hamming).is_err()); // cutoff
        assert!(lowpass_fir(11, 0.0, WindowKind::Hamming).is_err());
    }

    #[test]
    fn unit_dc_gain() {
        for w in [
            WindowKind::Rectangular,
            WindowKind::Hamming,
            WindowKind::Hann,
            WindowKind::Blackman,
        ] {
            let h = lowpass_fir(31, 0.1, w).unwrap();
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!((fir_magnitude(&h, 0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_linear_phase() {
        let h = lowpass_fir(21, 0.15, WindowKind::Hamming).unwrap();
        for k in 0..h.len() / 2 {
            assert!((h[k] - h[h.len() - 1 - k]).abs() < 1e-15);
        }
    }

    #[test]
    fn stopband_attenuation() {
        let h = lowpass_fir(63, 0.1, WindowKind::Hamming).unwrap();
        // Well into the stopband the Hamming design gives < -50 dB.
        let mag = fir_magnitude(&h, 0.25);
        assert!(mag < 0.004, "stopband magnitude {mag}");
        // Blackman should do even better.
        let hb = lowpass_fir(63, 0.1, WindowKind::Blackman).unwrap();
        assert!(fir_magnitude(&hb, 0.25) < mag);
    }

    #[test]
    fn window_endpoints() {
        assert_eq!(WindowKind::Rectangular.value(0, 10), 1.0);
        assert!((WindowKind::Hamming.value(0, 11) - 0.08).abs() < 1e-12);
        assert!(WindowKind::Hann.value(0, 11).abs() < 1e-12);
        assert_eq!(WindowKind::Hamming.value(0, 1), 1.0);
    }

    #[test]
    fn filtering_passes_dc() {
        let h = lowpass_fir(21, 0.2, WindowKind::Hamming).unwrap();
        let x = vec![1.0; 200];
        let y = fir_filter(&h, &x);
        // After the transient, output equals input (unit DC gain).
        assert!((y[100] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filtering_attenuates_high_frequency() {
        let h = lowpass_fir(63, 0.05, WindowKind::Hamming).unwrap();
        // Nyquist-rate alternation is far in the stopband.
        let x: Vec<f64> = (0..500)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = fir_filter(&h, &x);
        let tail_max = y[200..].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(tail_max < 1e-3, "{tail_max}");
    }
}
