//! Radix-2 FFT and EMG spectral descriptors.
//!
//! The synthetic EMG generator is validated spectrally (its interference
//! pattern must live in the 20–450 Hz surface-EMG band), and the fatigue
//! extension tracks the classic median-frequency downshift. Both need a
//! power spectrum; this module provides an in-place iterative Cooley–Tukey
//! FFT plus [`median_frequency`] / [`mean_frequency`].

use crate::error::{DspError, Result};
use std::f64::consts::PI;

/// A complex number (minimal, local — avoids an external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex]) -> Result<()> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(DspError::InvalidArgument {
            reason: format!("FFT length must be a power of two, got {n}"),
        });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half].mul(w);
                chunk[i] = u.add(v);
                chunk[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// One-sided power spectral density estimate of a real signal.
///
/// The signal is zero-padded to the next power of two. Returns
/// `(frequencies_hz, power)` of length `nfft/2 + 1`.
pub fn power_spectrum(signal: &[f64], fs: f64) -> Result<(Vec<f64>, Vec<f64>)> {
    if signal.is_empty() {
        return Err(DspError::SignalTooShort {
            op: "power_spectrum",
            needed: 1,
            got: 0,
        });
    }
    if !(fs > 0.0) {
        return Err(DspError::InvalidArgument {
            reason: format!("sample rate must be positive, got {fs}"),
        });
    }
    let nfft = signal.len().next_power_of_two();
    let mut buf = vec![Complex::default(); nfft];
    // Hann window to control leakage; compensate window power.
    let mut wsum = 0.0;
    for (i, &x) in signal.iter().enumerate() {
        let w = if signal.len() > 1 {
            0.5 - 0.5 * (2.0 * PI * i as f64 / (signal.len() - 1) as f64).cos()
        } else {
            1.0
        };
        wsum += w * w;
        buf[i] = Complex::new(x * w, 0.0);
    }
    fft_in_place(&mut buf)?;
    let half = nfft / 2;
    let scale = 1.0 / (fs * wsum.max(1e-300));
    let mut freqs = Vec::with_capacity(half + 1);
    let mut power = Vec::with_capacity(half + 1);
    for (k, c) in buf.iter().take(half + 1).enumerate() {
        freqs.push(k as f64 * fs / nfft as f64);
        let mut p = c.norm_sq() * scale;
        if k != 0 && k != half {
            p *= 2.0; // one-sided fold
        }
        power.push(p);
    }
    Ok((freqs, power))
}

/// Median frequency: the frequency splitting total spectral power in half.
///
/// The standard EMG fatigue index — median frequency drops as a muscle
/// fatigues (paper Sec. 7 lists fatigue among the signal-purity effects).
pub fn median_frequency(signal: &[f64], fs: f64) -> Result<f64> {
    let (freqs, power) = power_spectrum(signal, fs)?;
    let total: f64 = power.iter().sum();
    if total <= 0.0 {
        return Err(DspError::InvalidArgument {
            reason: "signal has no spectral power".into(),
        });
    }
    let mut acc = 0.0;
    for (f, p) in freqs.iter().zip(&power) {
        acc += p;
        if acc >= total / 2.0 {
            return Ok(*f);
        }
    }
    // analyze: allow(panic-free-libs) power_spectrum rejects empty input, so freqs is non-empty
    Ok(*freqs.last().expect("non-empty spectrum"))
}

/// Mean (power-weighted centroid) frequency.
pub fn mean_frequency(signal: &[f64], fs: f64) -> Result<f64> {
    let (freqs, power) = power_spectrum(signal, fs)?;
    let total: f64 = power.iter().sum();
    if total <= 0.0 {
        return Err(DspError::InvalidArgument {
            reason: "signal has no spectral power".into(),
        });
    }
    Ok(freqs.iter().zip(&power).map(|(f, p)| f * p).sum::<f64>() / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_length_must_be_power_of_two() {
        let mut data = vec![Complex::default(); 3];
        assert!(fft_in_place(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data).unwrap();
        for c in &data {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_bin() {
        let n = 64;
        let k0 = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((2.0 * PI * k0 as f64 * i as f64 / n as f64).cos(), 0.0))
            .collect();
        fft_in_place(&mut data).unwrap();
        // Energy concentrated at bins k0 and n-k0.
        for (k, c) in data.iter().enumerate() {
            let mag = c.norm_sq().sqrt();
            if k == k0 || k == n - k0 {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {k}: {mag}");
            } else {
                assert!(mag < 1e-9, "bin {k} leak: {mag}");
            }
        }
    }

    #[test]
    fn parseval_identity() {
        // Σ|x|² = (1/N) Σ|X|²
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0).collect();
        let mut data: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut data).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = data.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn power_spectrum_peak_location() {
        let fs = 1000.0;
        let f0 = 100.0;
        let x: Vec<f64> = (0..2048)
            .map(|i| (2.0 * PI * f0 * i as f64 / fs).sin())
            .collect();
        let (freqs, power) = power_spectrum(&x, fs).unwrap();
        let (peak_idx, _) = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            (freqs[peak_idx] - f0).abs() < 2.0,
            "peak at {}",
            freqs[peak_idx]
        );
    }

    #[test]
    fn median_frequency_of_tone_is_the_tone() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..4096)
            .map(|i| (2.0 * PI * 150.0 * i as f64 / fs).sin())
            .collect();
        let mf = median_frequency(&x, fs).unwrap();
        assert!((mf - 150.0).abs() < 3.0, "median frequency {mf}");
    }

    #[test]
    fn mean_frequency_between_two_tones() {
        let fs = 1000.0;
        let x: Vec<f64> = (0..4096)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 100.0 * t).sin() + (2.0 * PI * 200.0 * t).sin()
            })
            .collect();
        let mf = mean_frequency(&x, fs).unwrap();
        assert!((mf - 150.0).abs() < 5.0, "mean frequency {mf}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(power_spectrum(&[], 1000.0).is_err());
        assert!(power_spectrum(&[1.0], 0.0).is_err());
        assert!(median_frequency(&[0.0; 64], 1000.0).is_err());
        assert!(mean_frequency(&[0.0; 64], 1000.0).is_err());
    }
}
