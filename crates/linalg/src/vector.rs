//! A thin owned vector type plus the free-function kernels (dot products,
//! norms, distances) used across the workspace.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An owned vector of `f64`.
///
/// Feature points (combined EMG + motion-capture window features) and final
/// per-motion feature vectors are `Vector`s.
#[derive(Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from an owned `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Vector length (number of components).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has no components.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the components.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the components.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        norm(&self.data)
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(dot(&self.data, &other.data))
    }

    /// Scales each component in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a unit-norm copy, or an error for the zero vector.
    pub fn normalized(&self) -> Result<Vector> {
        let n = self.norm();
        if n == 0.0 {
            return Err(LinalgError::Singular { op: "normalize" });
        }
        let mut v = self.clone();
        v.scale_mut(1.0 / n);
        Ok(v)
    }

    /// Appends the components of `other`, consuming `self`.
    ///
    /// This is the Section 3.3 "combining" operation: an m-length EMG feature
    /// vector appended to an n-length mocap feature vector.
    pub fn concat(mut self, other: &Vector) -> Vector {
        self.data.extend_from_slice(&other.data);
        self
    }

    /// True when every component is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add length mismatch");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a + b))
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub length mismatch");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a - b))
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, s: f64) -> Vector {
        Vector::from_iter(self.data.iter().map(|v| v * s))
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[")?;
        for (i, v) in self.data.iter().take(12).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > 12 {
            write!(f, ", ... ({} total)", self.data.len())?;
        }
        write!(f, "]")
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

// ---------------------------------------------------------------------------
// Free-function kernels over plain slices. These are deliberately slice-based
// so callers holding rows of a `Matrix` can use them without copies.
// ---------------------------------------------------------------------------

/// Dot product of two equal-length slices. Panics on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length slices.
///
/// This is the distance the paper's Eq. 9 uses between a query feature point
/// and a cluster centroid, and the metric used by the kNN classifier.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance between two equal-length slices.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "manhattan length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance between two equal-length slices.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "chebyshev length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let v = Vector::from_vec(vec![1.0, 2.0]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
        let w: Vector = vec![3.0].into();
        assert_eq!(w[0], 3.0);
        let it = Vector::from_iter((0..3).map(|i| i as f64));
        assert_eq!(it.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn norm_and_dot() {
        let v = Vector::from_vec(vec![3.0, 4.0]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        let w = Vector::from_vec(vec![1.0, 0.0]);
        assert_eq!(v.dot(&w).unwrap(), 3.0);
        assert!(v.dot(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn normalization() {
        let v = Vector::from_vec(vec![0.0, 2.0]);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vector::zeros(3).normalized().is_err());
    }

    #[test]
    fn concat_appends() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0]);
        let c = a.concat(&b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic_traits() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn index_mut_works() {
        let mut v = Vector::zeros(2);
        v[1] = 7.0;
        assert_eq!(v.as_slice(), &[0.0, 7.0]);
        v.as_mut_slice()[0] = 1.0;
        assert_eq!(v.into_vec(), vec![1.0, 7.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_euclidean(&a, &b) - 25.0).abs() < 1e-12);
        assert!((manhattan(&a, &b) - 7.0).abs() < 1e-12);
        assert!((chebyshev(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![1.0 + 1e-9, 2.0]);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&Vector::zeros(3), 1.0));
    }

    #[test]
    fn debug_format_truncates() {
        let v = Vector::zeros(100);
        let s = format!("{:?}", v);
        assert!(s.contains("100 total"));
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
