//! # kinemyo-linalg
//!
//! Self-contained dense linear algebra for the `kinemyo` workspace — the
//! Rust reproduction of *"Integration of Motion Capture and EMG data for
//! Classifying the Human Motions"* (Pradhan et al., ICDE 2007).
//!
//! The paper's feature pipeline needs exactly this toolbox:
//!
//! * a dense row-major [`Matrix`] for motion "joint matrices" (frames ×
//!   3-per-joint columns) and feature-point collections;
//! * [`svd()`](fn@svd) / [`Svd`] for the weighted-SVD window features (Eq. 2–3),
//!   with two independently implemented algorithms cross-validated in tests;
//! * a symmetric [`eig`](mod@eig) Jacobi solver (Gram-matrix route for
//!   tall-thin windows);
//! * [`qr`](mod@qr) factorization / least squares (detrending,
//!   calibration fits);
//! * [`stats`](mod@stats) kernels and the [`stats::ZScore`] feature
//!   scaler.
//!
//! Everything is implemented from scratch on `std` only: the workspace
//! deliberately avoids external numerics crates so the whole reproduction is
//! auditable end to end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod eig;
pub mod error;
pub mod matrix;
pub mod qr;
pub mod stats;
pub mod svd;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::{ColMajorMatrix, Matrix, MatrixView};
pub use svd::{svd, Svd};
pub use vector::Vector;

#[cfg(test)]
mod proptests {
    use crate::matrix::Matrix;
    use crate::svd::{svd_golub_reinsch, svd_jacobi};
    use proptest::prelude::*;

    fn small_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
        (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-100.0..100.0f64, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn svd_reconstruction_holds(a in small_matrix(12, 6)) {
            let s = crate::svd::svd(&a).unwrap();
            let recon = s.reconstruct();
            let denom = a.frobenius_norm().max(1.0);
            prop_assert!((&recon - &a).frobenius_norm() / denom < 1e-8);
        }

        #[test]
        fn svd_values_agree_between_algorithms(a in small_matrix(10, 4)) {
            let sj = svd_jacobi(&a).unwrap();
            let sg = svd_golub_reinsch(&a).unwrap();
            for (x, y) in sj.singular_values.iter().zip(&sg.singular_values) {
                prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
            }
        }

        #[test]
        fn svd_frobenius_identity(a in small_matrix(10, 5)) {
            // ‖A‖_F² = Σ σᵢ²
            let s = crate::svd::svd(&a).unwrap();
            let sum_sq: f64 = s.singular_values.iter().map(|v| v * v).sum();
            let f2 = a.frobenius_norm().powi(2);
            prop_assert!((sum_sq - f2).abs() < 1e-6 * (1.0 + f2));
        }

        #[test]
        fn transpose_is_involution(a in small_matrix(8, 8)) {
            prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        }

        #[test]
        fn matmul_identity_is_noop(a in small_matrix(6, 6)) {
            if a.is_square() {
                let i = Matrix::identity(a.rows());
                prop_assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
            }
        }

        #[test]
        fn gram_is_psd(a in small_matrix(10, 4)) {
            let g = a.gram();
            let e = crate::eig::sym_eig(&g).unwrap();
            let scale = g.max_abs().max(1.0);
            for &v in &e.eigenvalues {
                prop_assert!(v >= -1e-8 * scale);
            }
        }
    }
}
