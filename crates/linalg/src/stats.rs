//! Descriptive statistics over slices, plus feature-scaling helpers.
//!
//! The evaluation harness and feature normalizers use these; they are kept
//! here (rather than in `features`) because they are generic numeric
//! kernels with no domain knowledge.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Arithmetic mean. Errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`). Errors on empty input.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n−1`). Errors when fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(LinalgError::InvalidArgument {
            reason: "sample_variance needs at least 2 samples".into(),
        });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum value. Errors on empty input; NaNs are ignored unless all-NaN.
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or(LinalgError::Empty { op: "min" })
}

/// Maximum value. Errors on empty input; NaNs are ignored unless all-NaN.
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or(LinalgError::Empty { op: "max" })
}

/// Root-mean-square of a signal segment.
pub fn rms(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "rms" });
    }
    Ok((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Median (interpolated for even lengths). Errors on empty input.
pub fn median(xs: &[f64]) -> Result<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "percentile" });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(LinalgError::InvalidArgument {
            reason: format!("percentile {p} outside [0, 100]"),
        });
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Pearson correlation between two equal-length slices.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "pearson",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return Err(LinalgError::Singular { op: "pearson" });
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Per-column z-score parameters learned from a data matrix.
///
/// Used to standardize combined feature points before clustering so the
/// millivolt-scale EMG features and millimetre-scale mocap features (paper
/// Sec. 1 notes the differing resolutions) contribute comparably.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZScore {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations, floored to avoid division by ~0.
    pub stds: Vec<f64>,
}

impl ZScore {
    /// Learns parameters from the rows of `data`.
    pub fn fit(data: &Matrix) -> Result<Self> {
        if data.rows() == 0 {
            return Err(LinalgError::Empty { op: "ZScore::fit" });
        }
        let means = data.col_means()?.into_vec();
        let mut stds = vec![0.0; data.cols()];
        for r in 0..data.rows() {
            for (c, v) in data.row(r).iter().enumerate() {
                let d = v - means[c];
                stds[c] += d * d;
            }
        }
        let n = data.rows() as f64;
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave values centered but unscaled
            }
        }
        Ok(Self { means, stds })
    }

    /// Applies the transform to one point in place.
    pub fn apply_mut(&self, point: &mut [f64]) -> Result<()> {
        if point.len() != self.means.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "ZScore::apply",
                lhs: (point.len(), 1),
                rhs: (self.means.len(), 1),
            });
        }
        for ((x, m), s) in point.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
        Ok(())
    }

    /// Returns a standardized copy of the whole matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        let mut out = data.clone();
        for r in 0..out.rows() {
            self.apply_mut(out.row_mut(r))?;
        }
        Ok(out)
    }

    /// Dimensionality this scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn sample_variance_bessel() {
        let xs = [1.0, 2.0, 3.0];
        assert!((sample_variance(&xs).unwrap() - 1.0).abs() < 1e-12);
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn total_order_pins_signed_zero_subnormals_and_nan() {
        // Pins the IEEE-754 total order every comparator in this workspace
        // (stats, eig, svd, dtw, vptree) now sorts by: -NaN < -subnormal <
        // -0.0 < +0.0 < +subnormal < +NaN, bit-exactly, every run.
        let sub = f64::MIN_POSITIVE / 4.0;
        assert!(sub > 0.0 && !sub.is_normal(), "expected a subnormal");
        let mut v = [0.0, -sub, f64::NAN, -0.0, sub, -f64::NAN];
        v.sort_by(|a, b| a.total_cmp(b));
        assert!(v[0].is_nan() && v[0].is_sign_negative());
        assert_eq!(v[1].to_bits(), (-sub).to_bits());
        assert_eq!(v[2].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v[3].to_bits(), 0.0f64.to_bits());
        assert_eq!(v[4].to_bits(), sub.to_bits());
        assert!(v[5].is_nan() && v[5].is_sign_positive());
        // And the percentile kernel built on it stays well-defined.
        assert_eq!(median(&[-0.0, 0.0, -sub, sub]).unwrap(), 0.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min(&xs).unwrap(), -1.0);
        assert_eq!(max(&xs).unwrap(), 3.0);
        assert!(min(&[f64::NAN]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[2.0; 10]).unwrap() - 2.0).abs() < 1e-12);
        assert!(rms(&[]).is_err());
    }

    #[test]
    fn median_and_percentile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(percentile(&[0.0, 10.0], 0.0).unwrap(), 0.0);
        assert_eq!(percentile(&[0.0, 10.0], 100.0).unwrap(), 10.0);
        assert_eq!(percentile(&[0.0, 10.0], 25.0).unwrap(), 2.5);
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&a, &[1.0]).is_err());
        assert!(pearson(&a, &[5.0; 4]).is_err());
    }

    #[test]
    fn zscore_standardizes() {
        let data =
            Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]]).unwrap();
        let z = ZScore::fit(&data).unwrap();
        assert_eq!(z.dim(), 2);
        let t = z.transform(&data).unwrap();
        // Columns now have mean 0, std 1.
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| t[(r, c)]).collect();
            assert!(mean(&col).unwrap().abs() < 1e-12);
            assert!((std_dev(&col).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_constant_column_is_safe() {
        let data = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let z = ZScore::fit(&data).unwrap();
        let t = z.transform(&data).unwrap();
        assert!(t[(0, 0)].abs() < 1e-12);
        assert!(!t.has_non_finite());
    }

    #[test]
    fn zscore_dimension_checked() {
        let data = Matrix::identity(2);
        let z = ZScore::fit(&data).unwrap();
        let mut short = [1.0];
        assert!(z.apply_mut(&mut short).is_err());
        assert!(ZScore::fit(&Matrix::zeros(0, 2)).is_err());
    }
}
