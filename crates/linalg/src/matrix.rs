//! Dense row-major matrix of `f64` values.
//!
//! This is the workhorse type of the workspace: motion "joint matrices"
//! (one row per captured frame, three columns per joint), EMG channel
//! matrices, and feature-point collections are all represented as
//! [`Matrix`] values.

use crate::error::{LinalgError, Result};
use crate::vector::Vector;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64`.
///
/// Storage is a single contiguous `Vec<f64>`; element `(r, c)` lives at
/// `r * cols + c`. Row-major order matches how motion frames arrive (one
/// frame per row), keeping windowed feature extraction cache-friendly.
#[derive(Clone, PartialEq, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl<'de> Deserialize<'de> for Matrix {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            data: Vec<f64>,
        }
        let raw = Raw::deserialize(deserializer)?;
        Matrix::from_vec(raw.rows, raw.cols, raw.data).map_err(|e| D::Error::custom(e.to_string()))
    }
}

impl Matrix {
    /// Creates a matrix from raw row-major data.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!(
                    "data length {} does not match shape {}x{}",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// Returns an error if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::InvalidArgument {
                    reason: format!("row {} has length {}, expected {}", i, row.len(), cols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Checked element write.
    pub fn set(&mut self, r: usize, c: usize, value: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        self.data[r * self.cols + c] = value;
        Ok(())
    }

    /// Borrow row `r` as a slice. Panics if out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice. Panics if out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`]. Panics if out of bounds.
    pub fn col(&self, c: usize) -> Vector {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        Vector::from_iter((0..self.rows).map(|r| self.data[r * self.cols + c]))
    }

    /// Overwrites column `c` with `values`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) -> Result<()> {
        if c >= self.cols || values.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "set_col",
                lhs: (self.rows, self.cols),
                rhs: (values.len(), 1),
            });
        }
        for (r, &v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
        Ok(())
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Iterator over columns; each item iterates the column's values top to
    /// bottom. The values are strided in row-major storage — for repeated
    /// column-contiguous access use [`to_col_major`](Self::to_col_major).
    pub fn col_iter(&self) -> ColIter<'_> {
        ColIter { m: self, c: 0 }
    }

    /// Borrowed read-only view of this matrix (see [`MatrixView`]).
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// Transposed copy of the storage: a [`ColMajorMatrix`] whose columns
    /// are contiguous slices. The hot clustering kernels iterate centers
    /// dimension-major; this layout lets those loops stream contiguous
    /// memory instead of striding across rows.
    pub fn to_col_major(&self) -> ColMajorMatrix {
        let mut data = vec![0.0; self.rows * self.cols];
        for (r, row) in self.iter_rows().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                data[c * self.rows + r] = v;
            }
        }
        ColMajorMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix holding rows `r0..r1` (half-open).
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Result<Matrix> {
        if r0 > r1 || r1 > self.rows {
            return Err(LinalgError::InvalidArgument {
                reason: format!("row slice {}..{} invalid for {} rows", r0, r1, self.rows),
            });
        }
        Ok(Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        })
    }

    /// Returns a new matrix holding columns `c0..c1` (half-open).
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Result<Matrix> {
        if c0 > c1 || c1 > self.cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!("col slice {}..{} invalid for {} cols", c0, c1, self.cols),
            });
        }
        let w = c1 - c0;
        let mut data = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        Ok(Matrix {
            rows: self.rows,
            cols: w,
            data,
        })
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Vertically concatenates `self` and `other` (same column count).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous over both the
        // output row and the rhs row, which matters for the larger feature
        // matrices in the evaluation sweeps.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vector> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out.push(acc);
        }
        Ok(Vector::from_vec(out))
    }

    /// Computes `selfᵀ * self`, the Gram matrix of the columns.
    ///
    /// This is the input to the small symmetric eigenproblem used by the
    /// windowed SVD feature path.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    out.data[i * n + j] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }

    /// Scales every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Applies `f` to every element in place.
    pub fn map_mut(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        let mut m = self.clone();
        m.map_mut(f);
        m
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element value (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Column means as a vector of length `cols`.
    pub fn col_means(&self) -> Result<Vector> {
        if self.rows == 0 {
            return Err(LinalgError::Empty { op: "col_means" });
        }
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        let n = self.rows as f64;
        for s in &mut sums {
            *s /= n;
        }
        Ok(Vector::from_vec(sums))
    }

    /// Subtracts `v` from every row in place (e.g. mean-centering).
    pub fn sub_row_vector_mut(&mut self, v: &[f64]) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sub_row_vector",
                lhs: self.shape(),
                rhs: (1, v.len()),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, s) in row.iter_mut().zip(v) {
                *x -= s;
            }
        }
        Ok(())
    }

    /// True when every element of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// A borrowed, read-only view of row-major matrix data.
///
/// Lets kernels accept either a [`Matrix`] (via [`Matrix::view`]) or any
/// row-major slice (via [`MatrixView::from_slice`]) without copying —
/// the feature extractors use this to run over caller-owned buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Wraps a row-major slice as a view.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &'a [f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!(
                    "data length {} does not match shape {}x{}",
                    data.len(),
                    rows,
                    cols
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `r` as a slice. Panics if out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Owned row-major copy of the viewed data.
    pub fn to_matrix(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// A dense column-major matrix of `f64`.
///
/// Element `(r, c)` lives at `c * rows + r`, so each *column* is one
/// contiguous slice ([`col`](Self::col)). This is the layout the fuzzy
/// clustering distance kernel wants: with cluster centers stored
/// column-major, the dims-outer/clusters-inner distance loop reads one
/// contiguous center column per feature dimension and autovectorizes,
/// instead of striding across `c` row-major center rows per point.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajorMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ColMajorMatrix {
    /// Creates a column-major matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Column `c` as a contiguous slice. Panics if out of bounds.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutable column `c`. Panics if out of bounds.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Iterator over columns as contiguous slices.
    pub fn iter_cols(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.rows.max(1)).take(self.cols)
    }

    /// Re-fills this matrix from a row-major source of the same shape,
    /// without reallocating. The clustering loop calls this once per pass
    /// to refresh the center mirror (`O(c·d)`, amortized over the
    /// `O(n·c·d)` pass).
    pub fn copy_from_row_major(&mut self, src: &Matrix) -> Result<()> {
        if src.rows() != self.rows || src.cols() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "copy_from_row_major",
                lhs: (self.rows, self.cols),
                rhs: src.shape(),
            });
        }
        for (r, row) in src.iter_rows().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                self.data[c * self.rows + r] = v;
            }
        }
        Ok(())
    }

    /// Row-major copy (the transpose of the internal storage order).
    pub fn to_row_major(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for (r, &v) in self.col(c).iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }
}

impl Index<(usize, usize)> for ColMajorMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &self.data[c * self.rows + r]
    }
}

/// Iterator over the columns of a row-major [`Matrix`]; see
/// [`Matrix::col_iter`].
pub struct ColIter<'a> {
    m: &'a Matrix,
    c: usize,
}

impl<'a> Iterator for ColIter<'a> {
    type Item = ColValues<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.c >= self.m.cols {
            return None;
        }
        let c = self.c;
        self.c += 1;
        Some(ColValues { m: self.m, c, r: 0 })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.m.cols - self.c;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ColIter<'_> {}

/// The values of one column, top to bottom (strided row-major reads).
pub struct ColValues<'a> {
    m: &'a Matrix,
    c: usize,
    r: usize,
}

impl Iterator for ColValues<'_> {
    type Item = f64;

    #[inline]
    fn next(&mut self) -> Option<f64> {
        if self.r >= self.m.rows {
            return None;
        }
        let v = self.m.data[self.r * self.m.cols + self.c];
        self.r += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.m.rows - self.r;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ColValues<'_> {}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds for {}x{}",
            r,
            c,
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.data[r * self.cols + c])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_consistency() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn from_fn_and_diag() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn get_set_checked() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), 5.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn row_col_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.col(1).as_slice(), &[1.0, 2.0, 3.0]);
        assert!(m.set_col(5, &[1.0, 2.0, 3.0]).is_err());
        assert!(m.set_col(0, &[1.0]).is_err());
    }

    #[test]
    fn slicing_rows_and_cols() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let s = m.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(0, 0)], 3.0);
        let c = m.slice_cols(1, 3).unwrap();
        assert_eq!(c.shape(), (4, 2));
        assert_eq!(c[(0, 0)], 1.0);
        assert!(m.slice_rows(3, 1).is_err());
        assert!(m.slice_cols(0, 9).is_err());
    }

    #[test]
    fn stacking() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 5.0, 6.0]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let bad = Matrix::zeros(3, 2);
        assert!(a.hstack(&bad).is_err());
        let bad2 = Matrix::zeros(2, 3);
        assert!(a.vstack(&bad2).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
        let i = Matrix::identity(3);
        assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-12));
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let p = a.matmul(&b).unwrap();
        assert!(p.approx_eq(&m22(19.0, 22.0, 43.0, 50.0), 1e-12));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v.as_slice(), &[3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f64).sin());
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn scaling_and_mapping() {
        let m = m22(1.0, -2.0, 3.0, -4.0);
        let s = m.scaled(2.0);
        assert_eq!(s[(1, 1)], -8.0);
        let abs = m.map(f64::abs);
        assert_eq!(abs[(0, 1)], 2.0);
    }

    #[test]
    fn norms() {
        let m = m22(3.0, 0.0, 0.0, 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn col_means_and_centering() {
        let mut m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap();
        let means = m.col_means().unwrap();
        assert_eq!(means.as_slice(), &[2.0, 20.0]);
        m.sub_row_vector_mut(means.as_slice()).unwrap();
        assert_eq!(m.row(0), &[-1.0, -10.0]);
        assert_eq!(m.row(1), &[1.0, 10.0]);
        assert!(Matrix::zeros(0, 2).col_means().is_err());
    }

    #[test]
    fn ops_traits() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert!((&a + &b).approx_eq(&Matrix::filled(2, 2, 5.0), 1e-12));
        assert!((&a - &a).approx_eq(&Matrix::zeros(2, 2), 1e-12));
        assert_eq!((&a * 2.0)[(1, 1)], 8.0);
        assert_eq!((-&a)[(0, 0)], -1.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(0, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn iter_rows_covers_all() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{:?}", m);
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    fn col_major_roundtrips_and_slices() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        let cm = m.to_col_major();
        assert_eq!(cm.shape(), (3, 4));
        assert_eq!(cm.col(1), &[1.0, 11.0, 21.0]);
        assert_eq!(cm[(2, 3)], m[(2, 3)]);
        assert_eq!(cm.to_row_major(), m);
        let cols: Vec<&[f64]> = cm.iter_cols().collect();
        assert_eq!(cols.len(), 4);
        assert_eq!(cols[0], &[0.0, 10.0, 20.0]);
    }

    #[test]
    fn col_major_refill_without_realloc() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 3, |r, c| (r * c) as f64 + 7.0);
        let mut cm = a.to_col_major();
        cm.copy_from_row_major(&b).unwrap();
        assert_eq!(cm.to_row_major(), b);
        assert!(cm.copy_from_row_major(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn col_iter_matches_col() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let cols: Vec<Vec<f64>> = m.col_iter().map(|col| col.collect()).collect();
        assert_eq!(cols.len(), 3);
        for (c, col) in cols.iter().enumerate() {
            assert_eq!(col.as_slice(), m.col(c).as_slice());
        }
        assert_eq!(m.col_iter().len(), 3);
    }

    #[test]
    fn view_borrows_without_copying() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let v = m.view();
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(v.as_slice().as_ptr(), m.as_slice().as_ptr());
        assert_eq!(v.to_matrix(), m);
        assert!(!v.has_non_finite());
        let rows: Vec<&[f64]> = v.iter_rows().collect();
        assert_eq!(rows[0], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn view_from_slice_validates_shape() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let v = MatrixView::from_slice(2, 2, &data).unwrap();
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert!(MatrixView::from_slice(3, 2, &data).is_err());
    }

    #[test]
    fn empty_matrix_col_major_and_views() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.to_col_major().shape(), (0, 0));
        assert_eq!(m.col_iter().count(), 0);
        assert_eq!(m.view().iter_rows().count(), 0);
    }
}
