//! Singular value decomposition.
//!
//! The paper's motion-capture feature extractor (Eqs. 2–3) takes the SVD of
//! each `w×3` joint-matrix window `A = U Σ Vᵀ` and sums the right singular
//! vectors weighted by their normalized singular values. This module
//! provides two independent implementations:
//!
//! * [`svd_golub_reinsch`] — Householder bidiagonalization followed by
//!   implicit-shift QR iteration (Golub & Van Loan, *Matrix Computations*,
//!   the reference the paper itself cites \[4\]).
//! * [`svd_jacobi`] — one-sided (Hestenes) Jacobi column orthogonalization;
//!   slower but unconditionally convergent and extremely accurate for the
//!   small matrices the feature path produces.
//!
//! Both are exposed so tests can cross-validate them; [`svd`] is the default
//! entry point (Golub–Reinsch with a Jacobi fallback on the rare
//! non-convergence).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A thin singular value decomposition `A = U Σ Vᵀ`.
///
/// For an `m×n` input with `k = min(m, n)`: `u` is `m×k`, `singular_values`
/// has length `k` (sorted descending, non-negative), and `vt` is `k×n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m×k`.
    pub u: Matrix,
    /// Singular values, descending and non-negative.
    pub singular_values: Vec<f64>,
    /// Transposed right singular vectors, `k×n` (row `i` is vᵢᵀ).
    pub vt: Matrix,
}

impl Svd {
    /// Number of singular values, `min(m, n)`.
    pub fn rank_bound(&self) -> usize {
        self.singular_values.len()
    }

    /// Right singular vector `i` as an owned vec (row `i` of `vt`).
    pub fn right_singular_vector(&self, i: usize) -> &[f64] {
        self.vt.row(i)
    }

    /// Reconstructs `U Σ Vᵀ`; used by tests to bound the residual.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut us = self.u.clone();
        for c in 0..k {
            for r in 0..us.rows() {
                us[(r, c)] *= self.singular_values[c];
            }
        }
        // analyze: allow(panic-free-libs) u is m×k and vt is k×n by construction
        us.matmul(&self.vt).expect("shapes are consistent")
    }

    /// Numerical rank with tolerance relative to the largest singular value.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let s0 = self.singular_values.first().copied().unwrap_or(0.0);
        let thresh = s0 * rel_tol;
        self.singular_values.iter().filter(|&&s| s > thresh).count()
    }

    /// Normalized singular values (summing to 1), the weights of Eq. 3.
    ///
    /// Returns all-zero weights for an all-zero matrix (a stationary window).
    pub fn normalized_weights(&self) -> Vec<f64> {
        let total: f64 = self.singular_values.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.singular_values.len()];
        }
        self.singular_values.iter().map(|s| s / total).collect()
    }
}

/// Computes the thin SVD of `a`.
///
/// Dispatches to Golub–Reinsch; if that fails to converge (rare, pathological
/// inputs) falls back to the unconditionally convergent one-sided Jacobi.
///
/// ```
/// use kinemyo_linalg::{svd, Matrix};
///
/// let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
/// let s = svd(&a).unwrap();
/// assert_eq!(s.singular_values.len(), 3);
/// assert!((s.singular_values[0] - 3.0).abs() < 1e-12); // sorted descending
/// assert!((&s.reconstruct() - &a).frobenius_norm() < 1e-12);
/// ```
pub fn svd(a: &Matrix) -> Result<Svd> {
    if a.is_empty() {
        return Err(LinalgError::Empty { op: "svd" });
    }
    match svd_golub_reinsch(a) {
        Ok(s) => Ok(s),
        Err(LinalgError::NotConverged { .. }) => svd_jacobi(a),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// One-sided (Hestenes) Jacobi
// ---------------------------------------------------------------------------

/// Maximum number of sweeps for the one-sided Jacobi iteration.
const JACOBI_MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD.
///
/// Orthogonalizes the columns of `A` by plane rotations; the rotations
/// accumulate into `V`, the resulting column norms are the singular values
/// and the normalized columns form `U`.
pub fn svd_jacobi(a: &Matrix) -> Result<Svd> {
    if a.is_empty() {
        return Err(LinalgError::Empty { op: "svd_jacobi" });
    }
    if a.rows() < a.cols() {
        // Work on the transpose and swap factors: A = (U' Σ V'ᵀ)ᵀ = V' Σ U'ᵀ.
        let t = svd_jacobi(&a.transpose())?;
        let u = t.vt.transpose();
        let vt = t.u.transpose();
        return Ok(apply_sign_convention(Svd {
            u,
            singular_values: t.singular_values,
            vt,
        }));
    }

    let m = a.rows();
    let n = a.cols();
    let mut w = a.clone(); // working copy whose columns get orthogonalized
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON * (m as f64).sqrt();

    let mut converged = false;
    for _ in 0..JACOBI_MAX_SWEEPS {
        converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut alpha, mut beta, mut gamma) = (0.0, 0.0, 0.0);
                for r in 0..m {
                    let wp = w[(r, p)];
                    let wq = w[(r, q)];
                    alpha += wp * wp;
                    beta += wq * wq;
                    gamma += wp * wq;
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                converged = false;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let wp = w[(r, p)];
                    let wq = w[(r, q)];
                    w[(r, p)] = c * wp - s * wq;
                    w[(r, q)] = s * wp + c * wq;
                }
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = c * vp - s * vq;
                    v[(r, q)] = s * vp + c * vq;
                }
            }
        }
        if converged {
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NotConverged {
            algorithm: "one-sided jacobi svd",
            iterations: JACOBI_MAX_SWEEPS,
        });
    }

    // Extract singular values (column norms) and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|c| {
            let col = w.col(c);
            col.norm()
        })
        .collect();
    order.sort_by(|&i, &j| norms[j].total_cmp(&norms[i]));

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (new_idx, &old_idx) in order.iter().enumerate() {
        let s = norms[old_idx];
        singular_values.push(s);
        if s > 0.0 {
            for r in 0..m {
                u[(r, new_idx)] = w[(r, old_idx)] / s;
            }
        }
        for r in 0..n {
            vt[(new_idx, r)] = v[(r, old_idx)];
        }
    }
    complete_u_basis(&mut u, &singular_values);

    Ok(apply_sign_convention(Svd {
        u,
        singular_values,
        vt,
    }))
}

/// Fills in U columns associated with zero singular values so that U stays
/// orthonormal even for rank-deficient input (e.g. a perfectly stationary
/// motion window where a joint does not move at all).
fn complete_u_basis(u: &mut Matrix, singular_values: &[f64]) {
    let m = u.rows();
    let k = u.cols();
    for c in 0..k {
        if singular_values[c] > 0.0 {
            continue;
        }
        // Gram-Schmidt a standard basis vector against the existing columns.
        'candidates: for e in 0..m {
            let mut cand = vec![0.0; m];
            cand[e] = 1.0;
            for other in 0..k {
                if other == c {
                    continue;
                }
                let mut proj = 0.0;
                for r in 0..m {
                    proj += cand[r] * u[(r, other)];
                }
                for r in 0..m {
                    cand[r] -= proj * u[(r, other)];
                }
            }
            let nrm = cand.iter().map(|v| v * v).sum::<f64>().sqrt();
            if nrm > 1e-6 {
                for r in 0..m {
                    u[(r, c)] = cand[r] / nrm;
                }
                break 'candidates;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golub-Reinsch (bidiagonalization + implicit-shift QR)
// ---------------------------------------------------------------------------

/// Maximum QR iterations per singular value.
const GR_MAX_ITERS: usize = 75;

/// Golub–Reinsch SVD: Householder bidiagonalization followed by implicit
/// shifted QR on the bidiagonal form.
pub fn svd_golub_reinsch(a: &Matrix) -> Result<Svd> {
    if a.is_empty() {
        return Err(LinalgError::Empty {
            op: "svd_golub_reinsch",
        });
    }
    if a.rows() < a.cols() {
        let t = svd_golub_reinsch(&a.transpose())?;
        return Ok(apply_sign_convention(Svd {
            u: t.vt.transpose(),
            singular_values: t.singular_values,
            vt: t.u.transpose(),
        }));
    }

    let m = a.rows();
    let n = a.cols();
    let mut u = a.clone(); // overwritten in place, becomes U (m×n)
    let mut w = vec![0.0_f64; n]; // singular values
    let mut v = Matrix::zeros(n, n);
    let mut rv1 = vec![0.0_f64; n]; // superdiagonal workspace

    // --- Householder reduction to bidiagonal form -------------------------
    let mut g = 0.0_f64;
    let mut scale = 0.0_f64;
    let mut anorm = 0.0_f64;
    let mut l = 0usize;
    for i in 0..n {
        l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        let mut s = 0.0;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += u[(k, i)].abs();
            }
            if scale != 0.0 {
                for k in i..m {
                    u[(k, i)] /= scale;
                    s += u[(k, i)] * u[(k, i)];
                }
                let f = u[(i, i)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                u[(i, i)] = f - g;
                for j in l..n {
                    let mut s2 = 0.0;
                    for k in i..m {
                        s2 += u[(k, i)] * u[(k, j)];
                    }
                    let f2 = s2 / h;
                    for k in i..m {
                        let add = f2 * u[(k, i)];
                        u[(k, j)] += add;
                    }
                }
                for k in i..m {
                    u[(k, i)] *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        s = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += u[(i, k)].abs();
            }
            if scale != 0.0 {
                for k in l..n {
                    u[(i, k)] /= scale;
                    s += u[(i, k)] * u[(i, k)];
                }
                let f = u[(i, l)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                u[(i, l)] = f - g;
                for k in l..n {
                    rv1[k] = u[(i, k)] / h;
                }
                for j in l..m {
                    let mut s2 = 0.0;
                    for k in l..n {
                        s2 += u[(j, k)] * u[(i, k)];
                    }
                    for k in l..n {
                        let add = s2 * rv1[k];
                        u[(j, k)] += add;
                    }
                }
                for k in l..n {
                    u[(i, k)] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulate right-hand transformations (V) ------------------------
    for i in (0..n).rev() {
        if i < n - 1 {
            if g != 0.0 {
                for j in l..n {
                    v[(j, i)] = (u[(i, j)] / u[(i, l)]) / g;
                }
                for j in l..n {
                    let mut s = 0.0;
                    for k in l..n {
                        s += u[(i, k)] * v[(k, j)];
                    }
                    for k in l..n {
                        let add = s * v[(k, i)];
                        v[(k, j)] += add;
                    }
                }
            }
            for j in l..n {
                v[(i, j)] = 0.0;
                v[(j, i)] = 0.0;
            }
        }
        v[(i, i)] = 1.0;
        g = rv1[i];
        l = i;
    }

    // --- Accumulate left-hand transformations (U) -------------------------
    for i in (0..n.min(m)).rev() {
        let l2 = i + 1;
        g = w[i];
        for j in l2..n {
            u[(i, j)] = 0.0;
        }
        if g != 0.0 {
            let ginv = 1.0 / g;
            for j in l2..n {
                let mut s = 0.0;
                for k in l2..m {
                    s += u[(k, i)] * u[(k, j)];
                }
                let f = (s / u[(i, i)]) * ginv;
                for k in i..m {
                    let add = f * u[(k, i)];
                    u[(k, j)] += add;
                }
            }
            for j in i..m {
                u[(j, i)] *= ginv;
            }
        } else {
            for j in i..m {
                u[(j, i)] = 0.0;
            }
        }
        u[(i, i)] += 1.0;
    }

    // --- Diagonalize the bidiagonal form ----------------------------------
    let eps = f64::EPSILON;
    for k in (0..n).rev() {
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > GR_MAX_ITERS {
                return Err(LinalgError::NotConverged {
                    algorithm: "golub-reinsch svd",
                    iterations: GR_MAX_ITERS,
                });
            }
            // Test for splitting. rv1[0] is always zero so ls reaches 0 safely.
            let mut ls = k;
            let mut flag = true;
            while ls > 0 {
                if rv1[ls].abs() <= eps * anorm {
                    flag = false;
                    break;
                }
                if w[ls - 1].abs() <= eps * anorm {
                    break;
                }
                ls -= 1;
            }
            if ls == 0 {
                flag = false;
            }
            if flag {
                // Cancellation of rv1[ls] when w[ls-1] is negligible.
                let nm = ls - 1;
                let mut c = 0.0;
                let mut s = 1.0;
                for i in ls..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() <= eps * anorm {
                        break;
                    }
                    g = w[i];
                    let h = f64::hypot(f, g);
                    w[i] = h;
                    let hinv = 1.0 / h;
                    c = g * hinv;
                    s = -f * hinv;
                    for j in 0..m {
                        let y = u[(j, nm)];
                        let z = u[(j, i)];
                        u[(j, nm)] = y * c + z * s;
                        u[(j, i)] = z * c - y * s;
                    }
                }
            }
            let z = w[k];
            if ls == k {
                // Converged: make the singular value non-negative.
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        v[(j, k)] = -v[(j, k)];
                    }
                }
                break;
            }
            // Wilkinson shift from the bottom 2x2 minor.
            let mut x = w[ls];
            let nm = k - 1;
            let y0 = w[nm];
            g = rv1[nm];
            let h0 = rv1[k];
            let mut f = ((y0 - z) * (y0 + z) + (g - h0) * (g + h0)) / (2.0 * h0 * y0);
            g = f64::hypot(f, 1.0);
            f = ((x - z) * (x + z) + h0 * ((y0 / (f + sign(g, f))) - h0)) / x;
            // Implicit QR transformation, chasing the bulge down the band.
            let mut c = 1.0;
            let mut s = 1.0;
            for j in ls..=nm {
                let i = j + 1;
                g = rv1[i];
                let mut y = w[i];
                let mut h = s * g;
                g *= c;
                let mut zr = f64::hypot(f, h);
                rv1[j] = zr;
                c = f / zr;
                s = h / zr;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                for jj in 0..n {
                    let xv = v[(jj, j)];
                    let zv = v[(jj, i)];
                    v[(jj, j)] = xv * c + zv * s;
                    v[(jj, i)] = zv * c - xv * s;
                }
                zr = f64::hypot(f, h);
                w[j] = zr;
                if zr != 0.0 {
                    let zinv = 1.0 / zr;
                    c = f * zinv;
                    s = h * zinv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                for jj in 0..m {
                    let yu = u[(jj, j)];
                    let zu = u[(jj, i)];
                    u[(jj, j)] = yu * c + zu * s;
                    u[(jj, i)] = zu * c - yu * s;
                }
            }
            rv1[ls] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
    }

    if w.iter().any(|v| !v.is_finite()) {
        // Pathological cancellation; let the caller fall back to Jacobi.
        return Err(LinalgError::NotConverged {
            algorithm: "golub-reinsch svd (non-finite result)",
            iterations: GR_MAX_ITERS,
        });
    }

    // Sort singular values descending, permuting U and V columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].total_cmp(&w[i]));
    let mut u_sorted = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (new_idx, &old_idx) in order.iter().enumerate() {
        singular_values.push(w[old_idx]);
        for r in 0..m {
            u_sorted[(r, new_idx)] = u[(r, old_idx)];
        }
        for r in 0..n {
            vt[(new_idx, r)] = v[(r, old_idx)];
        }
    }

    Ok(apply_sign_convention(Svd {
        u: u_sorted,
        singular_values,
        vt,
    }))
}

/// `sign(a, b)`: |a| carrying the sign of `b` (Fortran SIGN intrinsic).
#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Fixes signs deterministically: for each right singular vector, the
/// component of largest magnitude is made non-negative (flipping the paired
/// left singular vector to preserve the product). This makes independent
/// implementations directly comparable and makes the Eq. 3 feature vectors
/// reproducible across runs.
fn apply_sign_convention(mut s: Svd) -> Svd {
    let k = s.singular_values.len();
    let n = s.vt.cols();
    let m = s.u.rows();
    for i in 0..k {
        let mut max_abs = 0.0;
        let mut max_val = 0.0;
        for c in 0..n {
            let v = s.vt[(i, c)];
            if v.abs() > max_abs {
                max_abs = v.abs();
                max_val = v;
            }
        }
        if max_val < 0.0 {
            for c in 0..n {
                s.vt[(i, c)] = -s.vt[(i, c)];
            }
            for r in 0..m {
                s.u[(r, i)] = -s.u[(r, i)];
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::dot;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Deterministic LCG so tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn check_svd(a: &Matrix, s: &Svd, tol: f64) {
        // Reconstruction
        let recon = s.reconstruct();
        let resid = (&recon - a).frobenius_norm();
        let denom = a.frobenius_norm().max(1.0);
        assert!(
            resid / denom < tol,
            "reconstruction residual too large: {} for {:?}",
            resid / denom,
            a.shape()
        );
        // Orthonormality of U columns
        let utu = s.u.transpose().matmul(&s.u).unwrap();
        assert!(
            utu.approx_eq(&Matrix::identity(utu.rows()), 1e-8),
            "UᵀU not identity"
        );
        // Orthonormality of V rows
        let vvt = s.vt.matmul(&s.vt.transpose()).unwrap();
        assert!(
            vvt.approx_eq(&Matrix::identity(vvt.rows()), 1e-8),
            "VVᵀ not identity"
        );
        // Singular values descending and non-negative
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &sv in &s.singular_values {
            assert!(sv >= 0.0);
        }
    }

    #[test]
    fn identity_svd() {
        let a = Matrix::identity(3);
        for f in [svd_jacobi, svd_golub_reinsch] {
            let s = f(&a).unwrap();
            check_svd(&a, &s, 1e-12);
            for &sv in &s.singular_values {
                assert!((sv - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_diagonal() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        for f in [svd_jacobi, svd_golub_reinsch] {
            let s = f(&a).unwrap();
            assert!((s.singular_values[0] - 5.0).abs() < 1e-10);
            assert!((s.singular_values[1] - 3.0).abs() < 1e-10);
            assert!((s.singular_values[2] - 1.0).abs() < 1e-10);
            check_svd(&a, &s, 1e-10);
        }
    }

    #[test]
    fn tall_thin_random() {
        for seed in 1..6u64 {
            let a = pseudo_random(24, 3, seed);
            let sj = svd_jacobi(&a).unwrap();
            let sg = svd_golub_reinsch(&a).unwrap();
            check_svd(&a, &sj, 1e-9);
            check_svd(&a, &sg, 1e-9);
            // Cross-validate singular values between the implementations.
            for (x, y) in sj.singular_values.iter().zip(&sg.singular_values) {
                assert!((x - y).abs() < 1e-8, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn wide_matrix() {
        let a = pseudo_random(3, 10, 7);
        for f in [svd_jacobi, svd_golub_reinsch] {
            let s = f(&a).unwrap();
            assert_eq!(s.u.shape(), (3, 3));
            assert_eq!(s.vt.shape(), (3, 10));
            check_svd(&a, &s, 1e-9);
        }
    }

    #[test]
    fn square_random_cross_validation() {
        for seed in 10..14u64 {
            let a = pseudo_random(8, 8, seed);
            let sj = svd_jacobi(&a).unwrap();
            let sg = svd_golub_reinsch(&a).unwrap();
            for (x, y) in sj.singular_values.iter().zip(&sg.singular_values) {
                assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // Column 2 = 2 * column 0 → rank 2 at most.
        let a = Matrix::from_fn(6, 3, |r, c| match c {
            0 => (r as f64 + 1.0).sin(),
            1 => (r as f64 + 1.0).cos(),
            _ => 2.0 * (r as f64 + 1.0).sin(),
        });
        for f in [svd_jacobi, svd_golub_reinsch] {
            let s = f(&a).unwrap();
            check_svd(&a, &s, 1e-9);
            assert_eq!(s.rank(1e-9), 2);
            assert!(s.singular_values[2].abs() < 1e-9);
        }
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(5, 3);
        for f in [svd_jacobi, svd_golub_reinsch] {
            let s = f(&a).unwrap();
            for &sv in &s.singular_values {
                assert_eq!(sv, 0.0);
            }
            assert!(s.reconstruct().approx_eq(&a, 1e-12));
            assert_eq!(s.normalized_weights(), vec![0.0; 3]);
        }
        // Jacobi keeps U orthonormal even here via basis completion.
        let s = svd_jacobi(&a).unwrap();
        let utu = s.u.transpose().matmul(&s.u).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn single_column() {
        let a = Matrix::from_vec(4, 1, vec![1.0, 2.0, 2.0, 0.0]).unwrap();
        let s = svd(&a).unwrap();
        assert!((s.singular_values[0] - 3.0).abs() < 1e-12);
        check_svd(&a, &s, 1e-12);
    }

    #[test]
    fn single_row() {
        let a = Matrix::from_vec(1, 3, vec![3.0, 0.0, 4.0]).unwrap();
        let s = svd(&a).unwrap();
        assert!((s.singular_values[0] - 5.0).abs() < 1e-12);
        check_svd(&a, &s, 1e-12);
    }

    #[test]
    fn normalized_weights_sum_to_one() {
        let a = pseudo_random(20, 3, 42);
        let s = svd(&a).unwrap();
        let w = s.normalized_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (i, &wi) in w.iter().enumerate() {
            assert!(wi >= 0.0, "weight {i} negative: {wi}");
        }
    }

    #[test]
    fn sign_convention_is_deterministic() {
        let a = pseudo_random(12, 3, 99);
        let s1 = svd_jacobi(&a).unwrap();
        let s2 = svd_golub_reinsch(&a).unwrap();
        // With distinct singular values, both implementations must agree on
        // right singular vectors exactly (up to numerical noise), thanks to
        // the sign convention.
        for i in 0..3 {
            for c in 0..3 {
                assert!(
                    (s1.vt[(i, c)] - s2.vt[(i, c)]).abs() < 1e-7,
                    "vt[{i},{c}] differs: {} vs {}",
                    s1.vt[(i, c)],
                    s2.vt[(i, c)]
                );
            }
        }
    }

    #[test]
    fn empty_is_error() {
        assert!(svd(&Matrix::zeros(0, 3)).is_err());
        assert!(svd_jacobi(&Matrix::zeros(3, 0)).is_err());
        assert!(svd_golub_reinsch(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn spectral_norm_matches_two_norm_bound() {
        // ‖A‖₂ = σ₁ ≤ ‖A‖_F, with equality iff rank 1.
        let a = pseudo_random(10, 4, 5);
        let s = svd(&a).unwrap();
        assert!(s.singular_values[0] <= a.frobenius_norm() + 1e-12);
        let sum_sq: f64 = s.singular_values.iter().map(|v| v * v).sum();
        assert!((sum_sq.sqrt() - a.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn large_window_shape_from_paper() {
        // 200 ms at 120 Hz = 24 frames; joint matrix is 24×3 (paper Sec. 5-6).
        let a = pseudo_random(24, 3, 2007);
        let s = svd(&a).unwrap();
        assert_eq!(s.singular_values.len(), 3);
        check_svd(&a, &s, 1e-10);
    }

    #[test]
    fn dot_helper_consistency() {
        // sanity: column extraction + dot matches gram entries
        let a = pseudo_random(9, 3, 3);
        let g = a.gram();
        let c0 = a.col(0);
        let c1 = a.col(1);
        assert!((dot(c0.as_slice(), c1.as_slice()) - g[(0, 1)]).abs() < 1e-12);
    }
}
