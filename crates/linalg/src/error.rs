//! Error types for linear-algebra operations.

use std::fmt;

/// Errors produced by `kinemyo-linalg` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a non-empty matrix or vector.
    Empty {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// An iterative algorithm did not converge within its iteration budget.
    NotConverged {
        /// Name of the algorithm that failed to converge.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The matrix is singular (or numerically so) and the operation is undefined.
    Singular {
        /// Human-readable description of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index as `(row, col)`.
        index: (usize, usize),
        /// The matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A scalar argument was invalid (NaN, out of range, ...).
    InvalidArgument {
        /// Explanation of what was wrong with the argument.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Empty { op } => write!(f, "{op} requires a non-empty operand"),
            LinalgError::NotConverged {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::Singular { op } => write!(f, "matrix is singular in {op}"),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::InvalidArgument { reason } => {
                write!(f, "invalid argument: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_not_converged() {
        let e = LinalgError::NotConverged {
            algorithm: "jacobi-svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("jacobi-svd"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn display_other_variants() {
        assert!(LinalgError::Empty { op: "mean" }
            .to_string()
            .contains("mean"));
        assert!(LinalgError::Singular { op: "solve" }
            .to_string()
            .contains("singular"));
        assert!(LinalgError::IndexOutOfBounds {
            index: (9, 9),
            shape: (2, 2)
        }
        .to_string()
        .contains("out of bounds"));
        assert!(LinalgError::InvalidArgument {
            reason: "negative tolerance".into()
        }
        .to_string()
        .contains("negative tolerance"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::Empty { op: "x" });
    }
}
