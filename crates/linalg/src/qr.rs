//! Householder QR decomposition and least-squares solving.
//!
//! Used by the DSP crate for filter-design fitting and by detrending
//! utilities; also a general-purpose building block a downstream user of a
//! numerics crate expects to find.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// QR decomposition `A = Q R` with `Q` orthonormal (`m×n`, thin) and `R`
/// upper triangular (`n×n`), for `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor, `m×n`.
    pub q: Matrix,
    /// Upper-triangular factor, `n×n`.
    pub r: Matrix,
}

/// Computes the thin QR decomposition of `a` (requires `rows ≥ cols`).
pub fn qr(a: &Matrix) -> Result<Qr> {
    let (m, n) = a.shape();
    if a.is_empty() {
        return Err(LinalgError::Empty { op: "qr" });
    }
    if m < n {
        return Err(LinalgError::InvalidArgument {
            reason: format!("qr requires rows >= cols, got {m}x{n}"),
        });
    }
    // Householder vectors stored implicitly; accumulate Q explicitly since
    // the matrices in this workspace are small.
    let mut r = a.clone();
    let mut q_full = Matrix::identity(m);

    for k in 0..n {
        // Build the Householder reflector for column k.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r[(i, k)] * r[(i, k)];
        }
        let norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq == 0.0 {
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀ v) to R (columns k..n).
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let f = 2.0 * dot / vnorm_sq;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        // Apply H to Q_full from the right: Q ← Q Hᵀ = Q H (H symmetric).
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q_full[(i, j)] * v[j - k];
            }
            let f = 2.0 * dot / vnorm_sq;
            for j in k..m {
                q_full[(i, j)] -= f * v[j - k];
            }
        }
    }

    // Thin factors.
    let q = q_full.slice_cols(0, n)?;
    let mut r_thin = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_thin[(i, j)] = r[(i, j)];
        }
    }
    Ok(Qr { q, r: r_thin })
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via QR.
///
/// Errors if `A` is rank deficient (zero diagonal in `R`).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vector> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "lstsq",
            lhs: (m, n),
            rhs: (b.len(), 1),
        });
    }
    let Qr { q, r } = qr(a)?;
    // x = R⁻¹ Qᵀ b by back substitution.
    let qtb = q.transpose().matvec(b)?;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = qtb[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-12 * r.max_abs().max(1.0) {
            return Err(LinalgError::Singular { op: "lstsq" });
        }
        x[i] = acc / d;
    }
    Ok(Vector::from_vec(x))
}

/// Solves the square linear system `A x = b` (via QR; errors when singular).
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vector> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("solve requires a square matrix, got {:?}", a.shape()),
        });
    }
    lstsq(a, b)
}

/// Inverse of a square matrix via QR (column-by-column solve).
///
/// Errors when the matrix is singular. Intended for the small matrices of
/// this workspace (e.g. the per-cluster covariance matrices of
/// Gustafson–Kessel clustering).
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("inverse requires a square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "inverse" });
    }
    let decomposition = qr(a)?;
    let qt = decomposition.q.transpose();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for col in 0..n {
        e[col] = 1.0;
        // Solve R x = Qᵀ e by back substitution.
        let qtb = qt.matvec(&e)?;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = qtb[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= decomposition.r[(i, j)] * xj;
            }
            let d = decomposition.r[(i, i)];
            if d.abs() < 1e-12 * decomposition.r.max_abs().max(1.0) {
                return Err(LinalgError::Singular { op: "inverse" });
            }
            x[i] = acc / d;
        }
        inv.set_col(col, &x)?;
        e[col] = 0.0;
    }
    Ok(inv)
}

/// Determinant of a square matrix by Gaussian elimination with partial
/// pivoting (sign-exact, O(n³); ample for the small covariance matrices
/// this workspace inverts).
pub fn determinant(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("determinant requires a square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "determinant" });
    }
    // Gaussian elimination with partial pivoting — O(n³), exact sign.
    let mut m = a.clone();
    let mut det = 1.0f64;
    for col in 0..n {
        // Pivot selection.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[(r, col)].abs() > m[(pivot, col)].abs() {
                pivot = r;
            }
        }
        let p = m[(pivot, col)];
        if p == 0.0 {
            return Ok(0.0);
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot, c)];
                m[(pivot, c)] = tmp;
            }
            det = -det;
        }
        det *= p;
        for r in (col + 1)..n {
            let factor = m[(r, col)] / p;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let sub = factor * m[(col, c)];
                m[(r, c)] -= sub;
            }
        }
    }
    Ok(det)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = pseudo_random(8, 4, 1);
        let d = qr(&a).unwrap();
        let recon = d.q.matmul(&d.r).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_is_orthonormal() {
        let a = pseudo_random(10, 5, 2);
        let d = qr(&a).unwrap();
        let qtq = d.q.transpose().matmul(&d.q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(5), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = pseudo_random(6, 4, 3);
        let d = qr(&a).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(d.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_rejects_wide_and_empty() {
        assert!(qr(&Matrix::zeros(2, 3)).is_err());
        assert!(qr(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn solve_known_system() {
        // [[2, 0], [0, 4]] x = [2, 8] → x = [1, 2]
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 4.0]).unwrap();
        let x = solve(&a, &[2.0, 8.0]).unwrap();
        assert!(x.approx_eq(&Vector::from_vec(vec![1.0, 2.0]), 1e-12));
    }

    #[test]
    fn solve_random_system_roundtrip() {
        let a = pseudo_random(5, 5, 7);
        let x_true = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, b.as_slice()).unwrap();
        assert!(x.approx_eq(&Vector::from_vec(x_true), 1e-8));
    }

    #[test]
    fn lstsq_overdetermined() {
        // Fit y = 2t + 1 through noiseless samples.
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = Matrix::from_fn(10, 2, |r, c| if c == 0 { 1.0 } else { ts[r] });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 * t + 1.0).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detection() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_rejects_non_square() {
        assert!(solve(&Matrix::zeros(3, 2), &[0.0; 3]).is_err());
    }

    #[test]
    fn lstsq_rejects_bad_rhs() {
        let a = Matrix::identity(3);
        assert!(lstsq(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = pseudo_random(5, 5, 21);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(5), 1e-8));
        let prod2 = inv.matmul(&a).unwrap();
        assert!(prod2.approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn inverse_of_diagonal() {
        let d = Matrix::from_diag(&[2.0, 4.0, 0.5]);
        let inv = inverse(&d).unwrap();
        assert!(inv.approx_eq(&Matrix::from_diag(&[0.5, 0.25, 2.0]), 1e-12));
    }

    #[test]
    fn inverse_rejects_singular_and_nonsquare() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(inverse(&s).is_err());
        assert!(inverse(&Matrix::zeros(2, 3)).is_err());
        assert!(inverse(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn determinant_known_values() {
        assert_eq!(determinant(&Matrix::identity(4)).unwrap(), 1.0);
        let d = Matrix::from_diag(&[2.0, 3.0, -1.0]);
        assert!((determinant(&d).unwrap() + 6.0).abs() < 1e-12);
        // Row swap flips sign: [[0,1],[1,0]] has det -1.
        let p = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((determinant(&p).unwrap() + 1.0).abs() < 1e-12);
        let singular = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(determinant(&singular).unwrap(), 0.0);
        assert!(determinant(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn determinant_matches_product_rule() {
        let a = pseudo_random(4, 4, 31);
        let b = pseudo_random(4, 4, 32);
        let det_ab = determinant(&a.matmul(&b).unwrap()).unwrap();
        let prod = determinant(&a).unwrap() * determinant(&b).unwrap();
        assert!((det_ab - prod).abs() < 1e-8 * prod.abs().max(1.0));
    }
}
