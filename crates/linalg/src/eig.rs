//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! The windowed motion-capture feature extractor (paper Eqs. 2–3) needs the
//! right singular vectors of a tall-thin `w×3` joint matrix `A`; those are
//! exactly the eigenvectors of the 3×3 Gram matrix `AᵀA`. The Jacobi method
//! is simple, unconditionally convergent for symmetric input, and extremely
//! accurate for the tiny matrices this workspace works with.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors; column `i` corresponds to `eigenvalues[i]`.
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Only the lower/upper symmetric part is assumed meaningful; the input must
/// be square. Asymmetry beyond a small tolerance is rejected so silent
/// misuse (e.g. passing a non-Gram matrix) fails loudly.
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eig",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "sym_eig" });
    }
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(LinalgError::InvalidArgument {
                    reason: format!(
                        "matrix is not symmetric: a[{i},{j}]={} vs a[{j},{i}]={}",
                        a[(i, j)],
                        a[(j, i)]
                    ),
                });
            }
        }
    }

    let mut m = a.clone();
    let mut q = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            return Ok(collect_sorted(m, q));
        }
        for p in 0..n {
            for r in (p + 1)..n {
                jacobi_rotate(&mut m, &mut q, p, r);
            }
        }
    }
    Err(LinalgError::NotConverged {
        algorithm: "jacobi symmetric eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

/// Applies one Jacobi rotation zeroing `m[p, r]`, accumulating into `q`.
fn jacobi_rotate(m: &mut Matrix, q: &mut Matrix, p: usize, r: usize) {
    let apr = m[(p, r)];
    if apr == 0.0 {
        return;
    }
    let app = m[(p, p)];
    let arr = m[(r, r)];
    let theta = (arr - app) / (2.0 * apr);
    // Choose the smaller-angle root for numerical stability.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let n = m.rows();

    // Update rows/cols p and r of the symmetric matrix.
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkr = m[(k, r)];
        m[(k, p)] = c * mkp - s * mkr;
        m[(k, r)] = s * mkp + c * mkr;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mrk = m[(r, k)];
        m[(p, k)] = c * mpk - s * mrk;
        m[(r, k)] = s * mpk + c * mrk;
    }
    // Accumulate rotation into the eigenvector matrix.
    for k in 0..n {
        let qkp = q[(k, p)];
        let qkr = q[(k, r)];
        q[(k, p)] = c * qkp - s * qkr;
        q[(k, r)] = s * qkp + c * qkr;
    }
}

/// Maximum sweeps for the fixed-size 3×3 Jacobi solver. Symmetric Jacobi
/// converges quadratically; a cold start needs ~6 sweeps and a warm start
/// 1–2, so this cap is never reached in practice. If it were, the state at
/// exit is still a valid (slightly less converged) decomposition, which is
/// preferable to failing the feature path.
const MAX_SWEEPS_3: usize = 32;

/// Eigendecomposition of a 3×3 symmetric matrix, warm-started from a prior
/// orthonormal basis.
///
/// `g` is the symmetric input (row-major `g[r][c]`); `warm` is an
/// orthonormal matrix whose *columns* seed the eigenvector search — pass
/// the previous window's eigenvectors to converge in one or two sweeps
/// when consecutive inputs are similar, or the identity for a cold start.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted
/// descending (ties keep their pre-sort order) and eigenvector `i` in
/// column `i` of the returned matrix.
///
/// The result is a deterministic function of `(g, warm)`: callers that
/// feed the same chain of inputs get bitwise-identical outputs, which the
/// incremental feature extractors rely on to match their batch twins.
pub fn sym_eig3_warm(g: &[[f64; 3]; 3], warm: &[[f64; 3]; 3]) -> ([f64; 3], [[f64; 3]; 3]) {
    let mut q = *warm;
    // B = Qᵀ G Q — the input expressed in the warm basis. With a good warm
    // start B is already nearly diagonal. Computed entry-wise and
    // symmetrized so rounding cannot leave the two triangles disagreeing.
    let mut b = [[0.0f64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut acc = 0.0;
            for (k, gk) in g.iter().enumerate() {
                let mut inner = 0.0;
                for (l, &gkl) in gk.iter().enumerate() {
                    inner += gkl * q[l][j];
                }
                acc += q[k][i] * inner;
            }
            b[i][j] = acc;
        }
    }
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let s = 0.5 * (b[i][j] + b[j][i]);
        b[i][j] = s;
        b[j][i] = s;
    }

    let scale = b
        .iter()
        .flatten()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    for _sweep in 0..MAX_SWEEPS_3 {
        let off = (b[0][1] * b[0][1] + b[0][2] * b[0][2] + b[1][2] * b[1][2]).sqrt();
        if off <= 1e-15 * scale {
            break;
        }
        for (p, r) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let apr = b[p][r];
            if apr == 0.0 {
                continue;
            }
            let theta = (b[r][r] - b[p][p]) / (2.0 * apr);
            // Smaller-angle root, as in `jacobi_rotate` above.
            let t = if theta >= 0.0 {
                1.0 / (theta + (1.0 + theta * theta).sqrt())
            } else {
                1.0 / (theta - (1.0 + theta * theta).sqrt())
            };
            let c = 1.0 / (1.0 + t * t).sqrt();
            let s = t * c;
            for bk in b.iter_mut() {
                let bkp = bk[p];
                let bkr = bk[r];
                bk[p] = c * bkp - s * bkr;
                bk[r] = s * bkp + c * bkr;
            }
            // p < r for every pair above, so rows p and r split cleanly.
            let (head, tail) = b.split_at_mut(r);
            for (vp, vr) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                let bpk = *vp;
                let brk = *vr;
                *vp = c * bpk - s * brk;
                *vr = s * bpk + c * brk;
            }
            for qk in q.iter_mut() {
                let qkp = qk[p];
                let qkr = qk[r];
                qk[p] = c * qkp - s * qkr;
                qk[r] = s * qkp + c * qkr;
            }
        }
    }

    // Sort descending; a stable insertion keeps tied eigenvalues in their
    // pre-sort column order so the permutation is deterministic.
    let mut order = [0usize, 1, 2];
    for i in 1..3 {
        let mut j = i;
        while j > 0
            && b[order[j]][order[j]]
                .total_cmp(&b[order[j - 1]][order[j - 1]])
                .is_gt()
        {
            order.swap(j, j - 1);
            j -= 1;
        }
    }
    let mut eigenvalues = [0.0f64; 3];
    let mut eigenvectors = [[0.0f64; 3]; 3];
    for (new_col, &old_col) in order.iter().enumerate() {
        eigenvalues[new_col] = b[old_col][old_col];
        for r in 0..3 {
            eigenvectors[r][new_col] = q[r][old_col];
        }
    }
    (eigenvalues, eigenvectors)
}

/// The 3×3 identity, the cold-start basis for [`sym_eig3_warm`].
pub const EIG3_IDENTITY: [[f64; 3]; 3] = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];

/// Extracts eigenvalues from the (now nearly diagonal) matrix, sorts them in
/// descending order and permutes eigenvector columns to match.
fn collect_sorted(m: Matrix, q: Matrix) -> SymEig {
    let n = m.rows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = q[(row, old_col)];
        }
    }
    SymEig {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEig) -> Matrix {
        let lambda = Matrix::from_diag(&e.eigenvalues);
        e.eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = sym_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let e = sym_eig(&a).unwrap();
        let qtq = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn reconstruction_of_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let b = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 13) as f64 * 0.37).sin());
        let a = &b + &b.transpose();
        let e = sym_eig(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let b = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) as f64).cos());
        let a = &b + &b.transpose();
        let e = sym_eig(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rejects_non_square_and_non_symmetric() {
        assert!(sym_eig(&Matrix::zeros(2, 3)).is_err());
        let a = Matrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(matches!(
            sym_eig(&a),
            Err(LinalgError::InvalidArgument { .. })
        ));
        assert!(sym_eig(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_eigenvalues_are_nonnegative() {
        let a = Matrix::from_fn(10, 3, |i, j| ((i * 3 + j) as f64 * 0.71).sin());
        let g = a.gram();
        let e = sym_eig(&g).unwrap();
        for &v in &e.eigenvalues {
            assert!(v >= -1e-10, "gram eigenvalue {v} should be >= 0");
        }
    }

    #[test]
    fn handles_1x1() {
        let a = Matrix::from_vec(1, 1, vec![42.0]).unwrap();
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![42.0]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = Matrix::identity(3).scaled(2.0);
        let e = sym_eig(&a).unwrap();
        for &v in &e.eigenvalues {
            assert!((v - 2.0).abs() < 1e-12);
        }
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    fn gram3(seed: usize) -> [[f64; 3]; 3] {
        let a = Matrix::from_fn(12, 3, |i, j| ((i * 3 + j + seed) as f64 * 0.71).sin());
        let g = a.gram();
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = g[(r, c)];
            }
        }
        out
    }

    #[test]
    fn eig3_cold_matches_general_solver() {
        for seed in 0..6 {
            let g = gram3(seed);
            let (vals, vecs) = sym_eig3_warm(&g, &EIG3_IDENTITY);
            let gm = Matrix::from_fn(3, 3, |r, c| g[r][c]);
            let e = sym_eig(&gm).unwrap();
            for k in 0..3 {
                assert!(
                    (vals[k] - e.eigenvalues[k]).abs() <= 1e-9 * vals[0].abs().max(1.0),
                    "seed {seed}: {vals:?} vs {:?}",
                    e.eigenvalues
                );
                // Same eigenvector up to sign.
                let dot: f64 = (0..3).map(|r| vecs[r][k] * e.eigenvectors[(r, k)]).sum();
                assert!(dot.abs() > 1.0 - 1e-8, "seed {seed} col {k}: |dot| {dot}");
            }
        }
    }

    #[test]
    fn eig3_warm_start_agrees_with_cold() {
        // A warm start from a nearby problem's basis must land on the same
        // decomposition (to convergence tolerance) as a cold start.
        let g1 = gram3(0);
        let g2 = gram3(1);
        let (_, warm) = sym_eig3_warm(&g1, &EIG3_IDENTITY);
        let (cold_vals, cold_vecs) = sym_eig3_warm(&g2, &EIG3_IDENTITY);
        let (warm_vals, warm_vecs) = sym_eig3_warm(&g2, &warm);
        for k in 0..3 {
            assert!((cold_vals[k] - warm_vals[k]).abs() <= 1e-8 * cold_vals[0].abs().max(1.0));
            let dot: f64 = (0..3).map(|r| cold_vecs[r][k] * warm_vecs[r][k]).sum();
            assert!(dot.abs() > 1.0 - 1e-7, "col {k}: |dot| {dot}");
        }
    }

    #[test]
    fn eig3_is_bitwise_deterministic() {
        let g = gram3(3);
        let (_, warm) = sym_eig3_warm(&gram3(2), &EIG3_IDENTITY);
        let (v1, q1) = sym_eig3_warm(&g, &warm);
        let (v2, q2) = sym_eig3_warm(&g, &warm);
        for k in 0..3 {
            assert_eq!(v1[k].to_bits(), v2[k].to_bits());
            for r in 0..3 {
                assert_eq!(q1[r][k].to_bits(), q2[r][k].to_bits());
            }
        }
    }

    #[test]
    fn eig3_vectors_stay_orthonormal() {
        let mut basis = EIG3_IDENTITY;
        for seed in 0..8 {
            let (_, q) = sym_eig3_warm(&gram3(seed), &basis);
            for i in 0..3 {
                for j in 0..3 {
                    let dot: f64 = (0..3).map(|r| q[r][i] * q[r][j]).sum();
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((dot - expect).abs() < 1e-10, "seed {seed} ({i},{j}): {dot}");
                }
            }
            basis = q;
        }
    }

    #[test]
    fn eig3_zero_matrix_is_fixed_point() {
        let z = [[0.0; 3]; 3];
        let (vals, vecs) = sym_eig3_warm(&z, &EIG3_IDENTITY);
        assert_eq!(vals, [0.0; 3]);
        assert_eq!(vecs, EIG3_IDENTITY);
    }
}
