//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! The windowed motion-capture feature extractor (paper Eqs. 2–3) needs the
//! right singular vectors of a tall-thin `w×3` joint matrix `A`; those are
//! exactly the eigenvectors of the 3×3 Gram matrix `AᵀA`. The Jacobi method
//! is simple, unconditionally convergent for symmetric input, and extremely
//! accurate for the tiny matrices this workspace works with.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors; column `i` corresponds to `eigenvalues[i]`.
    pub eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Only the lower/upper symmetric part is assumed meaningful; the input must
/// be square. Asymmetry beyond a small tolerance is rejected so silent
/// misuse (e.g. passing a non-Gram matrix) fails loudly.
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eig",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "sym_eig" });
    }
    let scale = a.max_abs().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                return Err(LinalgError::InvalidArgument {
                    reason: format!(
                        "matrix is not symmetric: a[{i},{j}]={} vs a[{j},{i}]={}",
                        a[(i, j)],
                        a[(j, i)]
                    ),
                });
            }
        }
    }

    let mut m = a.clone();
    let mut q = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            return Ok(collect_sorted(m, q));
        }
        for p in 0..n {
            for r in (p + 1)..n {
                jacobi_rotate(&mut m, &mut q, p, r);
            }
        }
    }
    Err(LinalgError::NotConverged {
        algorithm: "jacobi symmetric eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

/// Applies one Jacobi rotation zeroing `m[p, r]`, accumulating into `q`.
fn jacobi_rotate(m: &mut Matrix, q: &mut Matrix, p: usize, r: usize) {
    let apr = m[(p, r)];
    if apr == 0.0 {
        return;
    }
    let app = m[(p, p)];
    let arr = m[(r, r)];
    let theta = (arr - app) / (2.0 * apr);
    // Choose the smaller-angle root for numerical stability.
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let n = m.rows();

    // Update rows/cols p and r of the symmetric matrix.
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkr = m[(k, r)];
        m[(k, p)] = c * mkp - s * mkr;
        m[(k, r)] = s * mkp + c * mkr;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mrk = m[(r, k)];
        m[(p, k)] = c * mpk - s * mrk;
        m[(r, k)] = s * mpk + c * mrk;
    }
    // Accumulate rotation into the eigenvector matrix.
    for k in 0..n {
        let qkp = q[(k, p)];
        let qkr = q[(k, r)];
        q[(k, p)] = c * qkp - s * qkr;
        q[(k, r)] = s * qkp + c * qkr;
    }
}

/// Extracts eigenvalues from the (now nearly diagonal) matrix, sorts them in
/// descending order and permutes eigenvector columns to match.
fn collect_sorted(m: Matrix, q: Matrix) -> SymEig {
    let n = m.rows();
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = q[(row, old_col)];
        }
    }
    SymEig {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEig) -> Matrix {
        let lambda = Matrix::from_diag(&e.eigenvalues);
        e.eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = sym_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let e = sym_eig(&a).unwrap();
        let qtq = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn reconstruction_of_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let b = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 13) as f64 * 0.37).sin());
        let a = &b + &b.transpose();
        let e = sym_eig(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let b = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) as f64).cos());
        let a = &b + &b.transpose();
        let e = sym_eig(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rejects_non_square_and_non_symmetric() {
        assert!(sym_eig(&Matrix::zeros(2, 3)).is_err());
        let a = Matrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(matches!(
            sym_eig(&a),
            Err(LinalgError::InvalidArgument { .. })
        ));
        assert!(sym_eig(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_eigenvalues_are_nonnegative() {
        let a = Matrix::from_fn(10, 3, |i, j| ((i * 3 + j) as f64 * 0.71).sin());
        let g = a.gram();
        let e = sym_eig(&g).unwrap();
        for &v in &e.eigenvalues {
            assert!(v >= -1e-10, "gram eigenvalue {v} should be >= 0");
        }
    }

    #[test]
    fn handles_1x1() {
        let a = Matrix::from_vec(1, 1, vec![42.0]).unwrap();
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![42.0]);
        assert_eq!(e.eigenvectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = Matrix::identity(3).scaled(2.0);
        let e = sym_eig(&a).unwrap();
        for &v in &e.eigenvalues {
            assert!((v - 2.0).abs() < 1e-12);
        }
        assert!(reconstruct(&e).approx_eq(&a, 1e-10));
    }
}
