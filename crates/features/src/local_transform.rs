//! Pelvis-local transformation of motion-capture data (paper Sec. 3.2).
//!
//! "With the global positions, it becomes difficult to analyze the motions
//! performed at different locations and in different directions. Thus, we
//! do the local transformation of positional data for each body segment by
//! shifting the global origin to the pelvis segment because it is the root
//! of all body segments."
//!
//! [`to_pelvis_local`] implements exactly that translation. As an
//! extension, [`to_pelvis_local_heading`] additionally cancels the
//! participant's heading so trials *facing* different directions also
//! align (the paper's translation-only transform leaves heading in the
//! data; the ablation benches quantify the difference).

use crate::error::{FeatureError, Result};
use kinemyo_linalg::Matrix;

fn check_shapes(mocap: &Matrix, pelvis: &Matrix) -> Result<()> {
    if pelvis.cols() != 3 {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "pelvis trajectory must have 3 columns, got {}",
                pelvis.cols()
            ),
        });
    }
    if pelvis.rows() != mocap.rows() {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "pelvis has {} frames but mocap has {}",
                pelvis.rows(),
                mocap.rows()
            ),
        });
    }
    if mocap.cols() % 3 != 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: format!("mocap columns ({}) must be a multiple of 3", mocap.cols()),
        });
    }
    Ok(())
}

/// Shifts every marker of every frame so the pelvis becomes the origin
/// (the paper's local transformation).
pub fn to_pelvis_local(mocap: &Matrix, pelvis: &Matrix) -> Result<Matrix> {
    check_shapes(mocap, pelvis)?;
    let mut out = mocap.clone();
    let joints = mocap.cols() / 3;
    for f in 0..out.rows() {
        let (px, py, pz) = (pelvis[(f, 0)], pelvis[(f, 1)], pelvis[(f, 2)]);
        let row = out.row_mut(f);
        for j in 0..joints {
            row[j * 3] -= px;
            row[j * 3 + 1] -= py;
            row[j * 3 + 2] -= pz;
        }
    }
    Ok(out)
}

/// Pelvis-local transform that also removes the heading rotation
/// `heading_rad` (rotation about the vertical Y axis) — aligning trials
/// performed facing different directions. Extension over the paper.
pub fn to_pelvis_local_heading(
    mocap: &Matrix,
    pelvis: &Matrix,
    heading_rad: f64,
) -> Result<Matrix> {
    let local = to_pelvis_local(mocap, pelvis)?;
    let (s, c) = (-heading_rad).sin_cos();
    let mut out = local;
    let joints = out.cols() / 3;
    for f in 0..out.rows() {
        let row = out.row_mut(f);
        for j in 0..joints {
            let x = row[j * 3];
            let z = row[j * 3 + 2];
            // Rotation about +Y by −heading: x' = c·x + s·z, z' = −s·x + c·z.
            row[j * 3] = c * x + s * z;
            row[j * 3 + 2] = -s * x + c * z;
        }
    }
    Ok(out)
}

/// Extracts the `w×3` joint matrix of joint `j` over frame range
/// `(start, end)` — the per-joint window the weighted-SVD feature consumes.
pub fn joint_window(mocap: &Matrix, joint: usize, start: usize, end: usize) -> Result<Matrix> {
    let joints = mocap.cols() / 3;
    if joint >= joints {
        return Err(FeatureError::ShapeMismatch {
            reason: format!("joint {joint} out of range ({joints} joints)"),
        });
    }
    if end > mocap.rows() || start > end {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "window {start}..{end} out of bounds ({} frames)",
                mocap.rows()
            ),
        });
    }
    let mut out = Matrix::zeros(end - start, 3);
    for (r, f) in (start..end).enumerate() {
        out[(r, 0)] = mocap[(f, joint * 3)];
        out[(r, 1)] = mocap[(f, joint * 3 + 1)];
        out[(r, 2)] = mocap[(f, joint * 3 + 2)];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_scene() -> (Matrix, Matrix) {
        // 2 joints, 3 frames; pelvis wandering.
        let mocap = Matrix::from_rows(&[
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            vec![11.0, 21.0, 31.0, 41.0, 51.0, 61.0],
            vec![12.0, 22.0, 32.0, 42.0, 52.0, 62.0],
        ])
        .unwrap();
        let pelvis = Matrix::from_rows(&[
            vec![10.0, 20.0, 30.0],
            vec![11.0, 21.0, 31.0],
            vec![12.0, 22.0, 32.0],
        ])
        .unwrap();
        (mocap, pelvis)
    }

    #[test]
    fn pelvis_becomes_origin() {
        let (mocap, pelvis) = simple_scene();
        let local = to_pelvis_local(&mocap, &pelvis).unwrap();
        // Joint 0 coincides with the pelvis → all zeros.
        for f in 0..3 {
            assert_eq!(local[(f, 0)], 0.0);
            assert_eq!(local[(f, 1)], 0.0);
            assert_eq!(local[(f, 2)], 0.0);
            // Joint 1 keeps its constant offset (30, 30, 30).
            assert_eq!(local[(f, 3)], 30.0);
            assert_eq!(local[(f, 4)], 30.0);
            assert_eq!(local[(f, 5)], 30.0);
        }
    }

    #[test]
    fn translation_invariance() {
        // Shifting the whole scene changes nothing after the transform.
        let (mocap, pelvis) = simple_scene();
        let shifted_mocap = mocap.map(|v| v + 500.0);
        let shifted_pelvis = pelvis.map(|v| v + 500.0);
        let a = to_pelvis_local(&mocap, &pelvis).unwrap();
        let b = to_pelvis_local(&shifted_mocap, &shifted_pelvis).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn shape_validation() {
        let (mocap, _) = simple_scene();
        let bad_pelvis = Matrix::zeros(3, 2);
        assert!(to_pelvis_local(&mocap, &bad_pelvis).is_err());
        let short_pelvis = Matrix::zeros(2, 3);
        assert!(to_pelvis_local(&mocap, &short_pelvis).is_err());
        let bad_mocap = Matrix::zeros(3, 5);
        assert!(to_pelvis_local(&bad_mocap, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn heading_normalization_aligns_rotated_trials() {
        // A marker at +Z, scene rotated 90° about Y (so it appears at +X).
        let pelvis = Matrix::zeros(1, 3);
        let facing_fwd = Matrix::from_rows(&[vec![0.0, 0.0, 100.0]]).unwrap();
        let facing_right = Matrix::from_rows(&[vec![100.0, 0.0, 0.0]]).unwrap();
        let a = to_pelvis_local_heading(&facing_fwd, &pelvis, 0.0).unwrap();
        let b =
            to_pelvis_local_heading(&facing_right, &pelvis, std::f64::consts::FRAC_PI_2).unwrap();
        assert!(a.approx_eq(&b, 1e-9), "{a:?} vs {b:?}");
    }

    #[test]
    fn joint_window_extraction() {
        let (mocap, _) = simple_scene();
        let w = joint_window(&mocap, 1, 1, 3).unwrap();
        assert_eq!(w.shape(), (2, 3));
        assert_eq!(w[(0, 0)], 41.0);
        assert_eq!(w[(1, 2)], 62.0);
        assert!(joint_window(&mocap, 2, 0, 2).is_err());
        assert!(joint_window(&mocap, 0, 0, 9).is_err());
    }
}
