//! # kinemyo-features
//!
//! The paper's feature-extraction pipeline, stage by stage:
//!
//! * [`extract`](mod@extract) — the windowed-extraction API:
//!   [`WindowedExtractor`] implementations with an O(d)-per-frame
//!   incremental path ([`extract::IavExtractor`], [`extract::WsvdExtractor`])
//!   that is bit-identical to batch extraction, built via
//!   [`extract::FeatureSpec`];
//! * [`iav`](mod@iav) — Integral of Absolute Value per EMG channel per window
//!   (Eq. 1);
//! * [`local_transform`] — pelvis-local re-origin of the motion matrices
//!   (Sec. 3.2), plus an optional heading-normalizing extension;
//! * [`wsvd`] — weighted-SVD joint features (Eqs. 2–3), with a mean-pose
//!   baseline for the ablation study;
//! * [`combine`] — appending the m-length EMG vector to the n-length mocap
//!   vector into an (m+n)-d feature point per window (Sec. 3.3), with a
//!   modality switch (EMG-only / mocap-only / combined);
//! * [`motion_vector`] — the final 2c-length min/max-of-highest-membership
//!   motion feature vectors (Eqs. 5–8), with a hard-histogram baseline;
//! * [`emg_features`](mod@emg_features) — the related work's alternative EMG features
//!   (Hudgins time-domain set \[7\], EMG histogram \[15\]) for the
//!   feature-choice ablation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod combine;
pub mod emg_features;
pub mod error;
pub mod extract;
pub mod iav;
pub mod local_transform;
pub mod motion_vector;
pub mod wsvd;

pub use combine::{window_feature_points, Modality};
pub use emg_features::{emg_features, EmgFeatureSet};
pub use error::{FeatureError, Result};
pub use extract::{
    iav_windows, mean_pose_windows, wsvd_windows, CombinedExtractor, FeatureSpec, IavExtractor,
    MeanPoseExtractor, WindowedExtractor, WsvdExtractor,
};
pub use iav::{iav, mav};
pub use local_transform::{to_pelvis_local, to_pelvis_local_heading};
pub use motion_vector::{hard_histogram_vector, motion_feature_vector, window_assignments};
pub use wsvd::weighted_sv_feature;

#[cfg(test)]
mod proptests {
    use crate::motion_vector::{hard_histogram_vector, motion_feature_vector};
    use crate::wsvd::weighted_sv_feature;
    use kinemyo_linalg::Matrix;
    use proptest::prelude::*;

    /// Random membership matrix with rows summing to 1.
    fn membership_matrix() -> impl Strategy<Value = Matrix> {
        (1usize..12, 2usize..8).prop_flat_map(|(n, c)| {
            proptest::collection::vec(0.001..1.0f64, n * c).prop_map(move |mut data| {
                for row in data.chunks_mut(c) {
                    let s: f64 = row.iter().sum();
                    for v in row.iter_mut() {
                        *v /= s;
                    }
                }
                Matrix::from_vec(n, c, data).unwrap()
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn final_vector_invariants(m in membership_matrix()) {
            let f = motion_feature_vector(&m).unwrap();
            prop_assert_eq!(f.len(), 2 * m.cols());
            for pair in f.as_slice().chunks(2) {
                prop_assert!(pair[0] >= 0.0 && pair[1] <= 1.0 + 1e-12);
                prop_assert!(pair[0] <= pair[1], "min {} > max {}", pair[0], pair[1]);
            }
            // The global max of highest memberships must appear somewhere.
            let hmax = (0..m.rows())
                .map(|r| m.row(r).iter().cloned().fold(0.0, f64::max))
                .fold(0.0, f64::max);
            let fmax = f.as_slice().iter().cloned().fold(0.0, f64::max);
            prop_assert!((hmax - fmax).abs() < 1e-12);
        }

        #[test]
        fn hard_histogram_is_a_distribution(m in membership_matrix()) {
            let h = hard_histogram_vector(&m).unwrap();
            let sum: f64 = h.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            for &v in h.as_slice() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn wsvd_feature_norm_bounded(
            data in proptest::collection::vec(-500.0..500.0f64, 18..72),
        ) {
            let n = data.len() / 3;
            let w = Matrix::from_vec(n, 3, data[..n * 3].to_vec()).unwrap();
            let f = weighted_sv_feature(&w).unwrap();
            let norm = (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
            prop_assert!(norm <= 1.0 + 1e-9);
            prop_assert!(f.iter().all(|v| v.is_finite()));
        }
    }
}
