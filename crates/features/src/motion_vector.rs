//! Final per-motion feature vectors from fuzzy memberships (Eqs. 5–8).
//!
//! After fuzzy c-means, every window of a motion has a membership row. For
//! each window take the *highest* membership `h` and its cluster (Eqs.
//! 5–6); the motion's final feature vector is, per cluster, the maximum
//! and minimum of those highest memberships over the windows that mapped
//! to it (Eqs. 7–8). Clusters no window mapped to contribute `(0, 0)` —
//! exactly the zero entries visible in the paper's Fig. 4. The final
//! vector has length `2c`.

use crate::error::{FeatureError, Result};
use kinemyo_linalg::{Matrix, Vector};

/// Highest membership and its cluster for one window (Eqs. 5–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAssignment {
    /// Index of the max-membership cluster.
    pub cluster: usize,
    /// The highest membership value.
    pub membership: f64,
}

/// Computes the per-window assignments from a membership matrix
/// (`windows × clusters`, rows summing to 1).
pub fn window_assignments(memberships: &Matrix) -> Result<Vec<WindowAssignment>> {
    if memberships.cols() == 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: "membership matrix has no clusters".into(),
        });
    }
    let mut out = Vec::with_capacity(memberships.rows());
    for w in 0..memberships.rows() {
        let row = memberships.row(w);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(WindowAssignment {
            cluster: best,
            membership: row[best],
        });
    }
    Ok(out)
}

/// Builds the final `2c`-length motion feature vector (Eqs. 7–8).
///
/// Layout: `[min₁, max₁, min₂, max₂, …, min_c, max_c]` — matching the
/// "min max" per-cluster pairs of the paper's Fig. 4.
pub fn motion_feature_vector(memberships: &Matrix) -> Result<Vector> {
    let assignments = window_assignments(memberships)?;
    let c = memberships.cols();
    let mut mins = vec![f64::INFINITY; c];
    let mut maxs = vec![0.0f64; c];
    for a in &assignments {
        if a.membership > maxs[a.cluster] {
            maxs[a.cluster] = a.membership;
        }
        if a.membership < mins[a.cluster] {
            mins[a.cluster] = a.membership;
        }
    }
    let mut out = Vec::with_capacity(2 * c);
    for k in 0..c {
        if mins[k].is_infinite() {
            // No window mapped to this cluster (Fig. 4 zeros).
            out.push(0.0);
            out.push(0.0);
        } else {
            out.push(mins[k]);
            out.push(maxs[k]);
        }
    }
    Ok(Vector::from_vec(out))
}

/// Hard-assignment baseline for the fuzzy-vs-hard ablation: the fraction
/// of windows assigned to each cluster (a `c`-length normalized
/// histogram). Uses the same max-membership assignment, but discards the
/// membership *values* the fuzzy representation keeps.
pub fn hard_histogram_vector(memberships: &Matrix) -> Result<Vector> {
    let assignments = window_assignments(memberships)?;
    let c = memberships.cols();
    let mut counts = vec![0.0f64; c];
    for a in &assignments {
        counts[a.cluster] += 1.0;
    }
    let n = assignments.len().max(1) as f64;
    for v in &mut counts {
        *v /= n;
    }
    Ok(Vector::from_vec(counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memberships() -> Matrix {
        // 4 windows, 3 clusters.
        Matrix::from_rows(&[
            vec![0.7, 0.2, 0.1],
            vec![0.6, 0.3, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.2, 0.5, 0.3],
        ])
        .unwrap()
    }

    #[test]
    fn assignments_pick_argmax() {
        let a = window_assignments(&memberships()).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].cluster, 0);
        assert_eq!(a[0].membership, 0.7);
        assert_eq!(a[2].cluster, 1);
        assert_eq!(a[2].membership, 0.8);
    }

    #[test]
    fn feature_vector_min_max_layout() {
        let f = motion_feature_vector(&memberships()).unwrap();
        assert_eq!(f.len(), 6);
        // Cluster 0: windows 0 (0.7) and 1 (0.6) → min 0.6, max 0.7.
        assert_eq!(f[0], 0.6);
        assert_eq!(f[1], 0.7);
        // Cluster 1: windows 2 (0.8) and 3 (0.5) → min 0.5, max 0.8.
        assert_eq!(f[2], 0.5);
        assert_eq!(f[3], 0.8);
        // Cluster 2: unvisited → zeros (paper Fig. 4).
        assert_eq!(f[4], 0.0);
        assert_eq!(f[5], 0.0);
    }

    #[test]
    fn single_window_motion() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9]]).unwrap();
        let f = motion_feature_vector(&m).unwrap();
        assert_eq!(f.as_slice(), &[0.0, 0.0, 0.9, 0.9]);
    }

    #[test]
    fn values_always_in_unit_interval() {
        let f = motion_feature_vector(&memberships()).unwrap();
        for &v in f.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
        // min ≤ max within each cluster pair.
        for pair in f.as_slice().chunks(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn empty_membership_matrix() {
        let m = Matrix::zeros(0, 3);
        let f = motion_feature_vector(&m).unwrap();
        assert_eq!(f.as_slice(), &[0.0; 6]);
        assert!(motion_feature_vector(&Matrix::zeros(2, 0)).is_err());
    }

    #[test]
    fn hard_histogram_sums_to_one() {
        let h = hard_histogram_vector(&memberships()).unwrap();
        assert_eq!(h.len(), 3);
        assert!((h.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h[0], 0.5);
        assert_eq!(h[1], 0.5);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn similar_motions_have_similar_vectors() {
        // Two "motions" whose windows visit the same clusters with similar
        // strengths should land close in final-feature space; a motion
        // visiting different clusters should not.
        let m1 = Matrix::from_rows(&[vec![0.8, 0.1, 0.1], vec![0.7, 0.2, 0.1]]).unwrap();
        let m2 = Matrix::from_rows(&[vec![0.75, 0.15, 0.1], vec![0.72, 0.2, 0.08]]).unwrap();
        let m3 = Matrix::from_rows(&[vec![0.1, 0.1, 0.8], vec![0.1, 0.2, 0.7]]).unwrap();
        let f1 = motion_feature_vector(&m1).unwrap();
        let f2 = motion_feature_vector(&m2).unwrap();
        let f3 = motion_feature_vector(&m3).unwrap();
        let d12 = kinemyo_linalg::vector::euclidean(f1.as_slice(), f2.as_slice());
        let d13 = kinemyo_linalg::vector::euclidean(f1.as_slice(), f3.as_slice());
        assert!(d12 < d13 / 3.0, "d12={d12} d13={d13}");
    }
}
