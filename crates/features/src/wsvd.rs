//! Weighted-SVD motion-capture features (paper Eqs. 2–3).
//!
//! For each joint's `w×3` window `A`, take `A = U Σ Vᵀ` and build the
//! 3-length feature
//!
//! `f = Σ_{k=1..3} (σ_k / Σ_j σ_j) · v_k`
//!
//! — the right singular vectors weighted by their normalized singular
//! values. The paper: "the weighted joint feature vector of length 3
//! represents the contribution of the corresponding joint to the motion
//! data in 3D space for the window … and also captures the geometric
//! similarity of motion matrices."

use crate::error::{FeatureError, Result};
use kinemyo_linalg::svd::svd;
use kinemyo_linalg::Matrix;

/// Weighted sum of right singular vectors for one joint window (Eq. 3).
///
/// A perfectly stationary (all-zero after centering… here: all-zero)
/// window has no singular directions; the feature is the zero vector.
pub fn weighted_sv_feature(window: &Matrix) -> Result<[f64; 3]> {
    if window.cols() != 3 {
        return Err(FeatureError::ShapeMismatch {
            reason: format!("joint window must have 3 columns, got {}", window.cols()),
        });
    }
    if window.rows() == 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: "joint window has no frames".into(),
        });
    }
    if window.has_non_finite() {
        // SVD on NaN input can fail to converge or emit NaN features;
        // reject before any arithmetic.
        return Err(FeatureError::NonFinite {
            context: "mocap joint window contains NaN or infinite values".into(),
        });
    }
    let decomposition = svd(window)?;
    let weights = decomposition.normalized_weights();
    let mut f = [0.0f64; 3];
    for (k, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let v = decomposition.right_singular_vector(k);
        for (fi, &vi) in f.iter_mut().zip(v) {
            *fi += w * vi;
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{mean_pose_windows, wsvd_windows};

    fn line_window(direction: [f64; 3], n: usize) -> Matrix {
        // Points marching along a single line: rank-1 joint matrix.
        Matrix::from_fn(n, 3, |r, c| (r as f64 + 1.0) * direction[c])
    }

    #[test]
    fn rank_one_window_recovers_direction() {
        let dir = [0.6, 0.0, 0.8]; // unit vector
        let w = line_window(dir, 12);
        let f = weighted_sv_feature(&w).unwrap();
        // All weight on v₁ = ±direction; sign convention fixes the larger
        // component positive, so f ≈ direction.
        for (fi, di) in f.iter().zip(&dir) {
            assert!((fi - di).abs() < 1e-9, "{f:?} vs {dir:?}");
        }
    }

    #[test]
    fn zero_window_gives_zero_feature() {
        let w = Matrix::zeros(10, 3);
        let f = weighted_sv_feature(&w).unwrap();
        assert_eq!(f, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn feature_is_scale_invariant_in_direction() {
        // Doubling amplitudes leaves normalized weights and directions
        // unchanged, hence the same feature.
        let w = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) as f64 * 0.4).sin());
        let w2 = w.scaled(2.0);
        let f1 = weighted_sv_feature(&w).unwrap();
        let f2 = weighted_sv_feature(&w2).unwrap();
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_norm_is_bounded_by_one() {
        // f is a convex combination of unit vectors, so ‖f‖ ≤ 1.
        for seed in 0..5 {
            let w = Matrix::from_fn(10, 3, |r, c| ((r * 7 + c * 3 + seed) as f64 * 0.71).sin());
            let f = weighted_sv_feature(&w).unwrap();
            let norm = (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
            assert!(norm <= 1.0 + 1e-9, "norm {norm}");
        }
    }

    #[test]
    fn different_motion_directions_give_different_features() {
        let fx = weighted_sv_feature(&line_window([1.0, 0.0, 0.0], 10)).unwrap();
        let fy = weighted_sv_feature(&line_window([0.0, 1.0, 0.0], 10)).unwrap();
        let d: f64 = fx.iter().zip(&fy).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 1.0, "features must separate motion directions");
    }

    #[test]
    fn shape_validation() {
        assert!(weighted_sv_feature(&Matrix::zeros(5, 2)).is_err());
        assert!(weighted_sv_feature(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn non_finite_window_rejected() {
        let mut w = line_window([1.0, 0.0, 0.0], 8);
        w[(3, 1)] = f64::NAN;
        assert!(matches!(
            weighted_sv_feature(&w),
            Err(FeatureError::NonFinite { .. })
        ));
        let mut mocap = Matrix::from_fn(12, 3, |r, _| r as f64);
        mocap[(5, 2)] = f64::INFINITY;
        assert!(matches!(
            wsvd_windows(&mocap, &[(0, 12)]),
            Err(FeatureError::NonFinite { .. })
        ));
    }

    #[test]
    fn multi_joint_features_layout() {
        // 2 joints, joint 0 moves in x, joint 1 in y.
        let mocap = Matrix::from_fn(12, 6, |r, c| match c {
            0 => r as f64,
            4 => r as f64,
            _ => 0.0,
        });
        let f = wsvd_windows(&mocap, &[(0, 6), (6, 12)]).unwrap();
        assert_eq!(f.shape(), (2, 6));
        // Joint 0 window feature points along x.
        assert!(f[(0, 0)] > 0.9);
        assert!(f[(0, 1)].abs() < 1e-9);
        // Joint 1 along y.
        assert!(f[(0, 4)] > 0.9);
        assert!(f[(0, 3)].abs() < 1e-9);
    }

    #[test]
    fn mean_pose_baseline() {
        let mocap = Matrix::from_fn(4, 3, |r, _| r as f64);
        let f = mean_pose_windows(&mocap, &[(0, 2), (2, 4)]).unwrap();
        assert_eq!(f[(0, 0)], 0.5);
        assert_eq!(f[(1, 0)], 2.5);
        assert!(mean_pose_windows(&mocap, &[(0, 9)]).is_err());
        assert!(mean_pose_windows(&Matrix::zeros(4, 2), &[(0, 2)]).is_err());
    }

    #[test]
    fn paper_window_sizes_all_work() {
        // 50/100/150/200 ms at 120 Hz → 6/12/18/24-frame windows.
        for len in [6usize, 12, 18, 24] {
            let mocap = Matrix::from_fn(48, 3, |r, c| ((r + c) as f64 * 0.3).cos());
            let ranges: Vec<(usize, usize)> =
                (0..48 / len).map(|i| (i * len, (i + 1) * len)).collect();
            let f = wsvd_windows(&mocap, &ranges).unwrap();
            assert_eq!(f.rows(), 48 / len);
            assert!(!f.has_non_finite());
        }
    }
}
