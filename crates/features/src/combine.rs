//! Combining the per-window EMG and motion-capture features (Sec. 3.3).
//!
//! "Having extracted the feature vectors for each window from motion
//! capture and EMG, the next step is to combine them by appending one to
//! other. Thus, m-length EMG feature vector … and n-length motion capture
//! feature vector form a (m+n)-length feature vector represented as a
//! point in (m+n)-dimensional feature space."

use crate::error::{FeatureError, Result};
use crate::extract::{iav_windows, wsvd_windows, FeatureSpec, WindowedExtractor};
use crate::local_transform::to_pelvis_local;
use kinemyo_dsp::WindowSpec;
use kinemyo_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Which feature-space components to build — the modality ablation switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Modality {
    /// EMG + motion capture combined (the paper's approach).
    #[default]
    Combined,
    /// EMG features only.
    EmgOnly,
    /// Motion-capture features only.
    MocapOnly,
}

/// Per-window combined feature points for one synchronized recording.
///
/// * `mocap_global` — `frames × (3·joints)` joint matrix in capture coords;
/// * `pelvis` — `frames × 3` pelvis trajectory (for the local transform);
/// * `emg` — `frames × channels` processed (rectified, 120 Hz) EMG;
/// * `window` — the segmentation (the paper: tumbling 50–200 ms windows).
///
/// Returns a `windows × d` matrix of feature points where
/// `d = channels + 3·joints` for [`Modality::Combined`].
pub fn window_feature_points(
    mocap_global: &Matrix,
    pelvis: &Matrix,
    emg: &Matrix,
    window: &WindowSpec,
    modality: Modality,
) -> Result<Matrix> {
    if mocap_global.rows() != emg.rows() {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "mocap has {} frames but emg has {} — streams must be synchronized",
                mocap_global.rows(),
                emg.rows()
            ),
        });
    }
    let ranges = window.ranges(mocap_global.rows());
    if ranges.is_empty() {
        return Err(FeatureError::NoWindows {
            frames: mocap_global.rows(),
            window: window.len(),
        });
    }
    // Tumbling segmentations (the pipeline default) take the incremental
    // single-pass path: every frame is consumed exactly once by a
    // `CombinedExtractor`, which is bitwise what a streaming frame-by-frame
    // consumer computes.
    let len = window.len();
    let tumbling = window.hop() == len
        && ranges
            .iter()
            .enumerate()
            .all(|(i, &(s, e))| s == i * len && e == s + len);
    if !tumbling {
        // Hopped / ragged segmentations: per-range batch kernels.
        return match modality {
            Modality::EmgOnly => iav_windows(emg, &ranges),
            Modality::MocapOnly => {
                let local = to_pelvis_local(mocap_global, pelvis)?;
                wsvd_windows(&local, &ranges)
            }
            Modality::Combined => {
                let emg_f = iav_windows(emg, &ranges)?;
                let local = to_pelvis_local(mocap_global, pelvis)?;
                let mocap_f = wsvd_windows(&local, &ranges)?;
                Ok(emg_f.hstack(&mocap_f)?)
            }
        };
    }

    let mut extractor = FeatureSpec::new(len)
        .with_modality(modality)
        .with_emg_channels(emg.cols())
        .with_mocap_cols(mocap_global.cols())
        .build()?;
    let local = match modality {
        Modality::EmgOnly => None,
        _ => Some(to_pelvis_local(mocap_global, pelvis)?),
    };
    let frames = ranges.last().copied().unwrap_or((0, 0)).1;
    let mut out = Matrix::zeros(ranges.len(), extractor.output_dims());
    let mut row_buf = Vec::with_capacity(extractor.input_dims());
    let mut w = 0;
    for f in 0..frames {
        row_buf.clear();
        if !matches!(modality, Modality::MocapOnly) {
            row_buf.extend_from_slice(emg.row(f));
        }
        if let Some(local) = &local {
            row_buf.extend_from_slice(local.row(f));
        }
        if let Some(feat) = extractor.push_sample(&row_buf)? {
            out.row_mut(w).copy_from_slice(&feat);
            w += 1;
        }
    }
    debug_assert_eq!(w, ranges.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(frames: usize) -> (Matrix, Matrix, Matrix) {
        let mocap = Matrix::from_fn(frames, 6, |r, c| (r as f64 * 0.1 + c as f64).sin() * 100.0);
        let pelvis = Matrix::from_fn(frames, 3, |r, _| r as f64 * 0.01);
        let emg = Matrix::from_fn(frames, 2, |r, c| ((r + c) as f64 * 0.7).sin().abs() * 1e-3);
        (mocap, pelvis, emg)
    }

    #[test]
    fn combined_dimension_is_m_plus_n() {
        let (mocap, pelvis, emg) = scene(48);
        let w = WindowSpec::tumbling(12).unwrap();
        let f = window_feature_points(&mocap, &pelvis, &emg, &w, Modality::Combined).unwrap();
        assert_eq!(f.shape(), (4, 2 + 6)); // m=2 EMG + n=3·2 mocap
    }

    #[test]
    fn modalities_select_subspaces() {
        let (mocap, pelvis, emg) = scene(48);
        let w = WindowSpec::tumbling(12).unwrap();
        let combined =
            window_feature_points(&mocap, &pelvis, &emg, &w, Modality::Combined).unwrap();
        let emg_only = window_feature_points(&mocap, &pelvis, &emg, &w, Modality::EmgOnly).unwrap();
        let mocap_only =
            window_feature_points(&mocap, &pelvis, &emg, &w, Modality::MocapOnly).unwrap();
        assert_eq!(emg_only.cols(), 2);
        assert_eq!(mocap_only.cols(), 6);
        // Combined = [EMG | mocap] columns in that order.
        for r in 0..combined.rows() {
            for c in 0..2 {
                assert_eq!(combined[(r, c)], emg_only[(r, c)]);
            }
            for c in 0..6 {
                assert_eq!(combined[(r, 2 + c)], mocap_only[(r, c)]);
            }
        }
    }

    #[test]
    fn unsynchronized_streams_rejected() {
        let (mocap, pelvis, _) = scene(48);
        let emg_short = Matrix::zeros(40, 2);
        let w = WindowSpec::tumbling(12).unwrap();
        assert!(
            window_feature_points(&mocap, &pelvis, &emg_short, &w, Modality::Combined).is_err()
        );
    }

    #[test]
    fn too_short_signal_yields_no_windows_error() {
        let (mocap, pelvis, emg) = scene(8);
        let w = WindowSpec::tumbling(12).unwrap();
        let err = window_feature_points(&mocap, &pelvis, &emg, &w, Modality::Combined);
        assert!(matches!(err, Err(FeatureError::NoWindows { .. })));
    }

    #[test]
    fn translation_of_scene_leaves_mocap_features_unchanged() {
        // The local transform must make features independent of where in
        // the lab the motion happened.
        let (mocap, pelvis, emg) = scene(36);
        let mocap_moved = mocap.map(|v| v + 2000.0);
        let pelvis_moved = pelvis.map(|v| v + 2000.0);
        let w = WindowSpec::tumbling(12).unwrap();
        let a = window_feature_points(&mocap, &pelvis, &emg, &w, Modality::MocapOnly).unwrap();
        let b = window_feature_points(&mocap_moved, &pelvis_moved, &emg, &w, Modality::MocapOnly)
            .unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }
}
