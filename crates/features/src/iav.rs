//! Integral of Absolute Value — the paper's EMG feature (Eq. 1).
//!
//! For a window `j` of length `w` of an EMG channel `x`:
//!
//! `IAV_j = Σ_{i = j·w}^{(j+1)·w − 1} |x_i|`
//!
//! computed separately per channel; a window of an `m`-channel recording
//! becomes an `m`-length feature vector. Windowed extraction lives in
//! [`crate::extract`]: `iav_windows` for explicit ranges,
//! [`IavExtractor`](crate::extract::IavExtractor) for incremental use.

/// IAV of one signal segment (Eq. 1).
///
/// ```
/// assert_eq!(kinemyo_features::iav(&[1.0, -2.0, 3.0]), 6.0);
/// ```
pub fn iav(window: &[f64]) -> f64 {
    window.iter().map(|v| v.abs()).sum()
}

/// Mean absolute value — IAV normalized by window length. Provided for
/// window-size-independent comparisons; the paper uses the raw sum.
pub fn mav(window: &[f64]) -> f64 {
    if window.is_empty() {
        0.0
    } else {
        iav(window) / window.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FeatureError;
    use crate::extract::iav_windows;
    use kinemyo_linalg::Matrix;

    #[test]
    fn iav_of_known_window() {
        assert_eq!(iav(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(iav(&[]), 0.0);
        assert_eq!(iav(&[-1.0, -1.0]), 2.0);
    }

    #[test]
    fn mav_normalizes() {
        assert_eq!(mav(&[1.0, -2.0, 3.0]), 2.0);
        assert_eq!(mav(&[]), 0.0);
    }

    #[test]
    fn windowed_features_shape_and_values() {
        // 2 channels, 6 frames.
        let emg = Matrix::from_rows(&[
            vec![1.0, -1.0],
            vec![-1.0, 2.0],
            vec![2.0, -3.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![-1.0, 1.0],
        ])
        .unwrap();
        let ranges = [(0, 3), (3, 6)];
        let f = iav_windows(&emg, &ranges).unwrap();
        assert_eq!(f.shape(), (2, 2));
        assert_eq!(f[(0, 0)], 4.0); // |1| + |-1| + |2|
        assert_eq!(f[(0, 1)], 6.0);
        assert_eq!(f[(1, 0)], 2.0);
        assert_eq!(f[(1, 1)], 2.0);
    }

    #[test]
    fn out_of_bounds_window_rejected() {
        let emg = Matrix::zeros(4, 1);
        assert!(iav_windows(&emg, &[(0, 5)]).is_err());
        assert!(iav_windows(&emg, &[(3, 2)]).is_err());
    }

    #[test]
    fn empty_ranges_give_empty_features() {
        let emg = Matrix::zeros(4, 2);
        let f = iav_windows(&emg, &[]).unwrap();
        assert_eq!(f.shape(), (0, 2));
    }

    #[test]
    fn non_finite_samples_rejected() {
        let mut emg = Matrix::zeros(4, 2);
        emg[(2, 1)] = f64::NAN;
        let err = iav_windows(&emg, &[(0, 4)]);
        assert!(matches!(err, Err(FeatureError::NonFinite { .. })));
        emg[(2, 1)] = f64::INFINITY;
        assert!(matches!(
            iav_windows(&emg, &[(0, 4)]),
            Err(FeatureError::NonFinite { .. })
        ));
    }

    #[test]
    fn iav_scales_with_amplitude() {
        let quiet: Vec<f64> = (0..50).map(|i| 0.1 * ((i as f64) * 0.7).sin()).collect();
        let loud: Vec<f64> = quiet.iter().map(|v| v * 10.0).collect();
        assert!((iav(&loud) - 10.0 * iav(&quiet)).abs() < 1e-9);
    }
}
