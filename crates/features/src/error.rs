//! Error types for feature extraction.

use std::fmt;

/// Errors produced by `kinemyo-features`.
#[derive(Debug)]
pub enum FeatureError {
    /// Input shapes are inconsistent (frames, channels, windows).
    ShapeMismatch {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// The input is too short to produce any window.
    NoWindows {
        /// Signal length in frames.
        frames: usize,
        /// Window length in frames.
        window: usize,
    },
    /// The input contains NaN or infinite samples. Raised *before* any
    /// arithmetic so a corrupt sensor sample becomes a typed error instead
    /// of silently poisoning cluster centers downstream.
    NonFinite {
        /// Which input and where the bad sample was found.
        context: String,
    },
    /// A downstream linear-algebra operation failed.
    Linalg(kinemyo_linalg::LinalgError),
    /// A downstream DSP operation failed.
    Dsp(kinemyo_dsp::DspError),
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            FeatureError::NoWindows { frames, window } => write!(
                f,
                "signal of {frames} frames yields no windows of length {window}"
            ),
            FeatureError::NonFinite { context } => {
                write!(f, "non-finite input: {context}")
            }
            FeatureError::Linalg(e) => write!(f, "linalg error: {e}"),
            FeatureError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for FeatureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeatureError::Linalg(e) => Some(e),
            FeatureError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kinemyo_linalg::LinalgError> for FeatureError {
    fn from(e: kinemyo_linalg::LinalgError) -> Self {
        FeatureError::Linalg(e)
    }
}

impl From<kinemyo_dsp::DspError> for FeatureError {
    fn from(e: kinemyo_dsp::DspError) -> Self {
        FeatureError::Dsp(e)
    }
}

/// Result alias for feature extraction.
pub type Result<T> = std::result::Result<T, FeatureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FeatureError::ShapeMismatch { reason: "x".into() }
            .to_string()
            .contains("shape mismatch"));
        assert!(FeatureError::NoWindows {
            frames: 3,
            window: 10
        }
        .to_string()
        .contains("no windows"));
        assert!(FeatureError::NonFinite {
            context: "emg window 3".into()
        }
        .to_string()
        .contains("non-finite"));
        let e: FeatureError = kinemyo_linalg::LinalgError::Empty { op: "svd" }.into();
        assert!(e.to_string().contains("linalg"));
        let d: FeatureError = kinemyo_dsp::DspError::InvalidArgument { reason: "r".into() }.into();
        assert!(d.to_string().contains("dsp"));
    }
}
