//! Redesigned windowed feature-extraction API: incremental-first, with a
//! batch path that is **bit-identical by construction**.
//!
//! The original per-stage free functions (`iav_features`, `wsvd_features`,
//! `mean_pose_features` — since removed) recomputed every window from
//! scratch from a full
//! `frames × d` matrix. That shape is wrong twice over for the paper's
//! motivating use case (prosthetic control, Sec. 5): a controller receives
//! *frames*, not matrices, and a tumbling window only ever needs O(d) new
//! work per frame — not an O(window · d) recomputation (or an O(window·3²)
//! SVD per joint) at every window boundary.
//!
//! This module replaces them with:
//!
//! * [`WindowedExtractor`] — the trait: feed rows with
//!   [`push_sample`](WindowedExtractor::push_sample) (O(d) per frame, a
//!   completed window pops out as `Some(feature_row)`), or hand over a whole
//!   matrix with [`extract_batch`](WindowedExtractor::extract_batch). The
//!   provided `extract_batch` literally pushes each row through
//!   `push_sample`, so the two paths cannot drift — not by a ulp.
//! * [`IavExtractor`] / [`MeanPoseExtractor`] — running-sum extractors
//!   (Eq. 1 and the ablation baseline) with O(channels) per-sample cost.
//! * [`WsvdExtractor`] — the weighted-SVD feature (Eqs. 2–3) via per-joint
//!   3×3 Gram accumulation (O(9) per sample per joint) and a warm-started
//!   Jacobi eigensolve at window boundaries: each window's rotation seeds
//!   the next window's iteration, which converges in 1–2 sweeps for
//!   continuous motion instead of from-scratch.
//! * [`FeatureSpec`] / [`CombinedExtractor`] — the builder that assembles
//!   the per-modality extractor the pipeline uses (EMG ‖ mocap
//!   concatenation of Sec. 3.3).
//! * [`iav_windows`] / [`wsvd_windows`] / [`mean_pose_windows`] — batch
//!   kernels over explicit `(start, end)` ranges, for arbitrary (hopped,
//!   ragged) segmentations that don't fit the tumbling incremental model.
//!   On tumbling ranges they produce bitwise the same matrices as the
//!   extractors.
//!
//! # Determinism contract
//!
//! For the same input rows in the same order, `push_sample` and
//! `extract_batch` produce bit-identical features at every window, on any
//! thread, on any run. The WSVD warm-start chain is part of an extractor's
//! state: window *k*'s eigensolve is seeded by window *k−1*'s rotation, so
//! the chain — and therefore the bits — depend only on the row sequence
//! since construction (or the last [`reset`](WindowedExtractor::reset)).
//! A rejected (wrong-arity or non-finite) row is dropped atomically: it
//! contributes nothing to any accumulator, and the extractor keeps
//! producing the exact sequence it would have produced had the row never
//! been offered.

use crate::error::{FeatureError, Result};
use kinemyo_linalg::eig::{sym_eig3_warm, EIG3_IDENTITY};
use kinemyo_linalg::Matrix;

pub use crate::combine::Modality;

/// A streaming window-feature extractor over fixed-length tumbling windows.
///
/// Implementations accumulate one row at a time and emit one feature row
/// per completed window. See the [module docs](self) for the determinism
/// contract tying `push_sample` and `extract_batch` together.
pub trait WindowedExtractor {
    /// Arity of each input row (matrix column count the extractor accepts).
    fn input_dims(&self) -> usize;

    /// Length of each emitted feature row.
    fn output_dims(&self) -> usize;

    /// Window length in frames.
    fn window_len(&self) -> usize;

    /// Frames buffered toward the next (incomplete) window.
    fn buffered(&self) -> usize;

    /// Feeds one frame. Returns `Some(feature_row)` when this frame
    /// completes a window, `None` otherwise. A rejected row (wrong arity,
    /// non-finite value) leaves the extractor state untouched.
    fn push_sample(&mut self, row: &[f64]) -> Result<Option<Vec<f64>>>;

    /// Forgets all buffered state *including* any warm-start seeds: after
    /// `reset()` the extractor is bitwise equivalent to a freshly built one.
    fn reset(&mut self);

    /// Extracts features for every complete window of `data`, in order.
    ///
    /// The provided implementation pushes each row through
    /// [`push_sample`](Self::push_sample), which is what makes batch and
    /// streaming bit-identical by construction. A trailing partial window
    /// stays buffered (tumbling tail-drop semantics if the caller discards
    /// the extractor afterwards).
    fn extract_batch(&mut self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.input_dims() {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "extractor expects rows of {} values, matrix has {} columns",
                    self.input_dims(),
                    data.cols()
                ),
            });
        }
        let windows = (self.buffered() + data.rows()) / self.window_len();
        let mut out = Matrix::zeros(windows, self.output_dims());
        let mut w = 0;
        for r in 0..data.rows() {
            if let Some(feat) = self.push_sample(data.row(r))? {
                out.row_mut(w).copy_from_slice(&feat);
                w += 1;
            }
        }
        debug_assert_eq!(w, windows);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// IAV (Eq. 1)
// ---------------------------------------------------------------------------

/// Incremental Integral-of-Absolute-Value extractor (Eq. 1): one running
/// sum per EMG channel, O(channels) per frame. With
/// [`normalized`](IavExtractor::mav) it emits the mean absolute value
/// (IAV / window length) instead of the raw sum.
#[derive(Debug, Clone)]
pub struct IavExtractor {
    channels: usize,
    window_len: usize,
    normalize: bool,
    acc: Vec<f64>,
    filled: usize,
    frame: u64,
}

impl IavExtractor {
    /// IAV extractor over `channels` channels and `window_len`-frame
    /// tumbling windows.
    pub fn new(channels: usize, window_len: usize) -> Self {
        Self {
            channels,
            window_len: window_len.max(1),
            normalize: false,
            acc: vec![0.0; channels],
            filled: 0,
            frame: 0,
        }
    }

    /// MAV variant: emits IAV normalized by the window length.
    pub fn mav(channels: usize, window_len: usize) -> Self {
        Self {
            normalize: true,
            ..Self::new(channels, window_len)
        }
    }
}

impl WindowedExtractor for IavExtractor {
    fn input_dims(&self) -> usize {
        self.channels
    }

    fn output_dims(&self) -> usize {
        self.channels
    }

    fn window_len(&self) -> usize {
        self.window_len
    }

    fn buffered(&self) -> usize {
        self.filled
    }

    fn push_sample(&mut self, row: &[f64]) -> Result<Option<Vec<f64>>> {
        if row.len() != self.channels {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "emg frame has {} values, extractor expects {}",
                    row.len(),
                    self.channels
                ),
            });
        }
        if let Some(ch) = row.iter().position(|v| !v.is_finite()) {
            return Err(FeatureError::NonFinite {
                context: format!("emg sample at frame {}, channel {ch}", self.frame),
            });
        }
        for (a, &v) in self.acc.iter_mut().zip(row) {
            *a += v.abs();
        }
        self.frame += 1;
        self.filled += 1;
        if self.filled < self.window_len {
            return Ok(None);
        }
        self.filled = 0;
        let mut out = std::mem::replace(&mut self.acc, vec![0.0; self.channels]);
        if self.normalize {
            let len = self.window_len as f64;
            for v in &mut out {
                *v /= len;
            }
        }
        Ok(Some(out))
    }

    fn reset(&mut self) {
        self.acc.fill(0.0);
        self.filled = 0;
        self.frame = 0;
    }
}

/// Batch IAV features over explicit half-open frame `ranges` (possibly
/// hopped or ragged). Returns `ranges.len() × channels`. On consecutive
/// tumbling ranges this is bitwise identical to [`IavExtractor`] — each
/// channel's sum sees the same addends in the same frame-ascending order.
pub fn iav_windows(emg: &Matrix, ranges: &[(usize, usize)]) -> Result<Matrix> {
    let channels = emg.cols();
    let mut out = Matrix::zeros(ranges.len(), channels);
    for (w, &(start, end)) in ranges.iter().enumerate() {
        if end > emg.rows() || start > end {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "window {start}..{end} out of bounds for {} frames",
                    emg.rows()
                ),
            });
        }
        let acc = out.row_mut(w);
        for frame in start..end {
            for (ch, (a, &v)) in acc.iter_mut().zip(emg.row(frame)).enumerate() {
                if !v.is_finite() {
                    return Err(FeatureError::NonFinite {
                        context: format!("emg sample at frame {frame}, channel {ch}"),
                    });
                }
                *a += v.abs();
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Mean pose (ablation baseline)
// ---------------------------------------------------------------------------

/// Incremental mean-pose extractor (ablation baseline: "where was the
/// joint" instead of "how did it move"). One running sum per coordinate.
#[derive(Debug, Clone)]
pub struct MeanPoseExtractor {
    cols: usize,
    window_len: usize,
    acc: Vec<f64>,
    filled: usize,
    frame: u64,
}

impl MeanPoseExtractor {
    /// Mean-pose extractor over `cols` coordinates (3 per joint) and
    /// `window_len`-frame tumbling windows.
    pub fn new(cols: usize, window_len: usize) -> Self {
        Self {
            cols,
            window_len: window_len.max(1),
            acc: vec![0.0; cols],
            filled: 0,
            frame: 0,
        }
    }
}

impl WindowedExtractor for MeanPoseExtractor {
    fn input_dims(&self) -> usize {
        self.cols
    }

    fn output_dims(&self) -> usize {
        self.cols
    }

    fn window_len(&self) -> usize {
        self.window_len
    }

    fn buffered(&self) -> usize {
        self.filled
    }

    fn push_sample(&mut self, row: &[f64]) -> Result<Option<Vec<f64>>> {
        if row.len() != self.cols {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "mocap frame has {} values, extractor expects {}",
                    row.len(),
                    self.cols
                ),
            });
        }
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Err(FeatureError::NonFinite {
                context: format!("mocap sample at frame {}, column {c}", self.frame),
            });
        }
        for (a, &v) in self.acc.iter_mut().zip(row) {
            *a += v;
        }
        self.frame += 1;
        self.filled += 1;
        if self.filled < self.window_len {
            return Ok(None);
        }
        self.filled = 0;
        let mut out = std::mem::replace(&mut self.acc, vec![0.0; self.cols]);
        let len = self.window_len as f64;
        for v in &mut out {
            *v /= len;
        }
        Ok(Some(out))
    }

    fn reset(&mut self) {
        self.acc.fill(0.0);
        self.filled = 0;
        self.frame = 0;
    }
}

/// Batch mean-pose features over explicit ranges (legacy semantics: a
/// degenerate `start >= end` range is rejected, non-finite samples are
/// summed as-is). Returns `ranges.len() × cols`.
pub fn mean_pose_windows(mocap_local: &Matrix, ranges: &[(usize, usize)]) -> Result<Matrix> {
    if mocap_local.cols() % 3 != 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "mocap columns ({}) must be a multiple of 3",
                mocap_local.cols()
            ),
        });
    }
    let cols = mocap_local.cols();
    let mut out = Matrix::zeros(ranges.len(), cols);
    for (w, &(start, end)) in ranges.iter().enumerate() {
        if end > mocap_local.rows() || start >= end {
            return Err(FeatureError::ShapeMismatch {
                reason: format!("window {start}..{end} out of bounds"),
            });
        }
        let len = (end - start) as f64;
        let acc = out.row_mut(w);
        for f in start..end {
            for (a, &v) in acc.iter_mut().zip(mocap_local.row(f)) {
                *a += v;
            }
        }
        for a in acc.iter_mut() {
            *a /= len;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Weighted SVD (Eqs. 2–3) via Gram accumulation + warm-started 3×3 Jacobi
// ---------------------------------------------------------------------------

/// Packed upper triangle of a per-joint 3×3 Gram matrix `AᵀA`:
/// `[g00, g01, g02, g11, g12, g22]`.
type Gram3 = [f64; 6];

/// Finishes one joint window: eigensolves the accumulated Gram matrix with
/// the previous window's rotation as the warm seed, stores the new rotation
/// back as the next seed, and forms the Eq. 3 feature.
///
/// The right singular vectors of a `w×3` window `A` are the eigenvectors of
/// `G = AᵀA` and the singular values are `√λ` — so the whole window-feature
/// only ever needs the 6 running Gram sums, never the window itself. The
/// sign convention replicates `svd::apply_sign_convention` (first strict
/// maximum-|component| made positive) so Gram-route features agree with
/// the SVD route's orientation choice.
fn gram_window_feature(g: &Gram3, warm: &mut [[f64; 3]; 3]) -> [f64; 3] {
    let gm = [[g[0], g[1], g[2]], [g[1], g[3], g[4]], [g[2], g[4], g[5]]];
    let (lam, mut q) = sym_eig3_warm(&gm, warm);
    // Roundoff can push a zero eigenvalue a hair negative; σ = √max(λ, 0).
    let sv = [
        lam[0].max(0.0).sqrt(),
        lam[1].max(0.0).sqrt(),
        lam[2].max(0.0).sqrt(),
    ];
    for k in 0..3 {
        let mut best = 0;
        for i in 1..3 {
            if q[i][k].abs() > q[best][k].abs() {
                best = i;
            }
        }
        if q[best][k] < 0.0 {
            for row in q.iter_mut() {
                row[k] = -row[k];
            }
        }
    }
    *warm = q;
    let total = sv[0] + sv[1] + sv[2];
    let mut f = [0.0f64; 3];
    if total > 0.0 {
        for (k, &s) in sv.iter().enumerate() {
            let w = s / total;
            if w == 0.0 {
                continue;
            }
            for (fi, row) in f.iter_mut().zip(&q) {
                *fi += w * row[k];
            }
        }
    }
    f
}

/// Incremental weighted-SVD extractor (Eqs. 2–3) over pelvis-local mocap
/// rows (`3·joints` values per frame).
///
/// Per frame it does O(9) Gram updates per joint; at each window boundary
/// it eigensolves each joint's 3×3 Gram matrix, warm-started from that
/// joint's previous window — consecutive windows of continuous motion have
/// nearly aligned principal directions, so the Jacobi sweep starts almost
/// converged.
#[derive(Debug, Clone)]
pub struct WsvdExtractor {
    joints: usize,
    window_len: usize,
    gram: Vec<Gram3>,
    warm: Vec<[[f64; 3]; 3]>,
    filled: usize,
    frame: u64,
}

impl WsvdExtractor {
    /// Extractor over `mocap_cols / 3` joints and `window_len`-frame
    /// tumbling windows. `mocap_cols` must be a multiple of 3.
    pub fn new(mocap_cols: usize, window_len: usize) -> Result<Self> {
        if mocap_cols % 3 != 0 {
            return Err(FeatureError::ShapeMismatch {
                reason: format!("mocap columns ({mocap_cols}) must be a multiple of 3"),
            });
        }
        let joints = mocap_cols / 3;
        Ok(Self {
            joints,
            window_len: window_len.max(1),
            gram: vec![[0.0; 6]; joints],
            warm: vec![EIG3_IDENTITY; joints],
            filled: 0,
            frame: 0,
        })
    }
}

impl WindowedExtractor for WsvdExtractor {
    fn input_dims(&self) -> usize {
        self.joints * 3
    }

    fn output_dims(&self) -> usize {
        self.joints * 3
    }

    fn window_len(&self) -> usize {
        self.window_len
    }

    fn buffered(&self) -> usize {
        self.filled
    }

    fn push_sample(&mut self, row: &[f64]) -> Result<Option<Vec<f64>>> {
        if row.len() != self.joints * 3 {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "mocap frame has {} values, extractor expects {}",
                    row.len(),
                    self.joints * 3
                ),
            });
        }
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Err(FeatureError::NonFinite {
                context: format!("mocap sample at frame {}, column {c}", self.frame),
            });
        }
        for (j, g) in self.gram.iter_mut().enumerate() {
            let (x, y, z) = (row[j * 3], row[j * 3 + 1], row[j * 3 + 2]);
            g[0] += x * x;
            g[1] += x * y;
            g[2] += x * z;
            g[3] += y * y;
            g[4] += y * z;
            g[5] += z * z;
        }
        self.frame += 1;
        self.filled += 1;
        if self.filled < self.window_len {
            return Ok(None);
        }
        self.filled = 0;
        let mut out = Vec::with_capacity(self.joints * 3);
        for (g, warm) in self.gram.iter_mut().zip(&mut self.warm) {
            let f = gram_window_feature(g, warm);
            out.extend_from_slice(&f);
            *g = [0.0; 6];
        }
        Ok(Some(out))
    }

    fn reset(&mut self) {
        self.gram.fill([0.0; 6]);
        self.warm.fill(EIG3_IDENTITY);
        self.filled = 0;
        self.frame = 0;
    }
}

/// Batch weighted-SVD features over explicit ranges. Returns
/// `ranges.len() × (3·joints)`.
///
/// Uses the same Gram + warm-started-Jacobi kernel as [`WsvdExtractor`],
/// chaining warm seeds across the given ranges in order — on consecutive
/// tumbling ranges the result is bitwise identical to the extractor.
pub fn wsvd_windows(mocap_local: &Matrix, ranges: &[(usize, usize)]) -> Result<Matrix> {
    if mocap_local.cols() % 3 != 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: format!(
                "mocap columns ({}) must be a multiple of 3",
                mocap_local.cols()
            ),
        });
    }
    let joints = mocap_local.cols() / 3;
    let mut out = Matrix::zeros(ranges.len(), joints * 3);
    let mut gram = vec![[0.0f64; 6]; joints];
    let mut warm = vec![EIG3_IDENTITY; joints];
    for (w, &(start, end)) in ranges.iter().enumerate() {
        if end > mocap_local.rows() || start > end {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "window {start}..{end} out of bounds ({} frames)",
                    mocap_local.rows()
                ),
            });
        }
        if start == end {
            return Err(FeatureError::ShapeMismatch {
                reason: "joint window has no frames".into(),
            });
        }
        gram.fill([0.0; 6]);
        for frame in start..end {
            let row = mocap_local.row(frame);
            if let Some(c) = row.iter().position(|v| !v.is_finite()) {
                return Err(FeatureError::NonFinite {
                    context: format!("mocap sample at frame {frame}, column {c}"),
                });
            }
            for (j, g) in gram.iter_mut().enumerate() {
                let (x, y, z) = (row[j * 3], row[j * 3 + 1], row[j * 3 + 2]);
                g[0] += x * x;
                g[1] += x * y;
                g[2] += x * z;
                g[3] += y * y;
                g[4] += y * z;
                g[5] += z * z;
            }
        }
        let dst = out.row_mut(w);
        for (j, (g, seed)) in gram.iter().zip(&mut warm).enumerate() {
            let f = gram_window_feature(g, seed);
            dst[j * 3..j * 3 + 3].copy_from_slice(&f);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// FeatureSpec / CombinedExtractor
// ---------------------------------------------------------------------------

/// Builder describing which windowed features to extract — the modality
/// switch of Sec. 3.3 plus the stream arities the extractor needs.
///
/// ```
/// use kinemyo_features::extract::{FeatureSpec, WindowedExtractor};
///
/// let mut ex = FeatureSpec::new(12)
///     .with_emg_channels(2)
///     .with_mocap_cols(6)
///     .build()
///     .unwrap();
/// assert_eq!(ex.input_dims(), 8); // [emg | pelvis-local mocap]
/// assert_eq!(ex.output_dims(), 8); // [IAV | weighted-SV]
/// let out = ex.push_sample(&[0.0; 8]).unwrap();
/// assert!(out.is_none()); // 11 frames still missing
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSpec {
    window_len: usize,
    modality: Modality,
    emg_channels: usize,
    mocap_cols: usize,
}

impl FeatureSpec {
    /// A combined-modality spec over `window_len`-frame tumbling windows.
    pub fn new(window_len: usize) -> Self {
        Self {
            window_len,
            modality: Modality::Combined,
            emg_channels: 0,
            mocap_cols: 0,
        }
    }

    /// Selects which feature-space components to build.
    pub fn with_modality(mut self, modality: Modality) -> Self {
        self.modality = modality;
        self
    }

    /// Number of EMG channels (ignored for [`Modality::MocapOnly`]).
    pub fn with_emg_channels(mut self, channels: usize) -> Self {
        self.emg_channels = channels;
        self
    }

    /// Number of mocap coordinates, `3·joints` (ignored for
    /// [`Modality::EmgOnly`]).
    pub fn with_mocap_cols(mut self, cols: usize) -> Self {
        self.mocap_cols = cols;
        self
    }

    /// Window length in frames.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Selected modality.
    pub fn modality(&self) -> Modality {
        self.modality
    }

    /// Builds the extractor. Fails if `window_len` is zero or the mocap
    /// arity is not a multiple of 3.
    pub fn build(&self) -> Result<CombinedExtractor> {
        if self.window_len == 0 {
            return Err(FeatureError::ShapeMismatch {
                reason: "window length must be at least 1 frame".into(),
            });
        }
        let iav = match self.modality {
            Modality::MocapOnly => None,
            _ => Some(IavExtractor::new(self.emg_channels, self.window_len)),
        };
        let wsvd = match self.modality {
            Modality::EmgOnly => None,
            _ => Some(WsvdExtractor::new(self.mocap_cols, self.window_len)?),
        };
        Ok(CombinedExtractor {
            window_len: self.window_len,
            iav,
            wsvd,
            filled: 0,
            frame: 0,
        })
    }
}

/// The per-modality extractor the pipeline uses: input rows are
/// `[emg | pelvis-local mocap]` (either part absent for the single-modality
/// variants), output rows are `[IAV | weighted-SV]` — the same
/// `(m+n)`-dimensional feature points as the batch combination of Sec. 3.3.
#[derive(Debug, Clone)]
pub struct CombinedExtractor {
    window_len: usize,
    iav: Option<IavExtractor>,
    wsvd: Option<WsvdExtractor>,
    filled: usize,
    frame: u64,
}

impl CombinedExtractor {
    fn emg_dims(&self) -> usize {
        self.iav.as_ref().map_or(0, IavExtractor::input_dims)
    }
}

impl WindowedExtractor for CombinedExtractor {
    fn input_dims(&self) -> usize {
        self.emg_dims() + self.wsvd.as_ref().map_or(0, WsvdExtractor::input_dims)
    }

    fn output_dims(&self) -> usize {
        self.input_dims()
    }

    fn window_len(&self) -> usize {
        self.window_len
    }

    fn buffered(&self) -> usize {
        self.filled
    }

    fn push_sample(&mut self, row: &[f64]) -> Result<Option<Vec<f64>>> {
        if row.len() != self.input_dims() {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "frame has {} values, extractor expects {}",
                    row.len(),
                    self.input_dims()
                ),
            });
        }
        // Validate the whole frame up front so a bad mocap half can never
        // leave the EMG half-extractor a frame ahead (atomic rejection).
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Err(FeatureError::NonFinite {
                context: format!("sample at frame {}, column {c}", self.frame),
            });
        }
        let (emg_part, mocap_part) = row.split_at(self.emg_dims());
        let a = match &mut self.iav {
            Some(e) => e.push_sample(emg_part)?,
            None => None,
        };
        let b = match &mut self.wsvd {
            Some(e) => e.push_sample(mocap_part)?,
            None => None,
        };
        self.frame += 1;
        self.filled += 1;
        if self.filled < self.window_len {
            debug_assert!(a.is_none() && b.is_none());
            return Ok(None);
        }
        self.filled = 0;
        let mut out = Vec::with_capacity(self.output_dims());
        if let Some(v) = a {
            out.extend_from_slice(&v);
        }
        if let Some(v) = b {
            out.extend_from_slice(&v);
        }
        Ok(Some(out))
    }

    fn reset(&mut self) {
        if let Some(e) = &mut self.iav {
            e.reset();
        }
        if let Some(e) = &mut self.wsvd {
            e.reset();
        }
        self.filled = 0;
        self.frame = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tumbling_ranges(frames: usize, len: usize) -> Vec<(usize, usize)> {
        (0..frames / len)
            .map(|i| (i * len, (i + 1) * len))
            .collect()
    }

    fn signal(frames: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        Matrix::from_fn(frames, cols, |r, c| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            ((r * cols + c) as f64 * 0.13).sin() * 40.0 + (u - 0.5) * 5.0
        })
    }

    #[test]
    fn iav_extractor_matches_range_kernel_bitwise() {
        let emg = signal(100, 3, 1);
        let ranges = tumbling_ranges(100, 12);
        let batch = iav_windows(&emg, &ranges).unwrap();
        let mut ex = IavExtractor::new(3, 12);
        let streamed = ex.extract_batch(&emg).unwrap();
        assert_eq!(streamed.shape(), batch.shape());
        for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(ex.buffered(), 100 % 12);
    }

    #[test]
    fn wsvd_extractor_matches_range_kernel_bitwise() {
        let mocap = signal(96, 6, 2);
        let ranges = tumbling_ranges(96, 16);
        let batch = wsvd_windows(&mocap, &ranges).unwrap();
        let mut ex = WsvdExtractor::new(6, 16).unwrap();
        let streamed = ex.extract_batch(&mocap).unwrap();
        assert_eq!(streamed.shape(), batch.shape());
        for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wsvd_matches_svd_route_closely() {
        // The Gram route must agree with the legacy SVD route to far better
        // than the pipeline's own tolerances.
        let mocap = signal(120, 9, 3);
        let ranges = tumbling_ranges(120, 24);
        let gram = wsvd_windows(&mocap, &ranges).unwrap();
        for (w, &(start, end)) in ranges.iter().enumerate() {
            for j in 0..3 {
                let window = crate::local_transform::joint_window(&mocap, j, start, end).unwrap();
                let f = crate::wsvd::weighted_sv_feature(&window).unwrap();
                for i in 0..3 {
                    assert!(
                        (gram[(w, j * 3 + i)] - f[i]).abs() < 1e-9,
                        "window {w} joint {j} comp {i}: {} vs {}",
                        gram[(w, j * 3 + i)],
                        f[i]
                    );
                }
            }
        }
    }

    #[test]
    fn pure_axis_motion_keeps_exact_zeros() {
        // Diagonal Gram matrices must produce exactly-zero off-axis
        // components (the layout test in wsvd.rs relies on this).
        let mocap = Matrix::from_fn(24, 6, |r, c| match c {
            0 => r as f64,
            4 => r as f64 * 0.5,
            _ => 0.0,
        });
        let f = wsvd_windows(&mocap, &[(0, 12), (12, 24)]).unwrap();
        assert!(f[(0, 0)] > 0.9);
        assert_eq!(f[(0, 1)], 0.0);
        assert_eq!(f[(0, 2)], 0.0);
        assert!(f[(1, 4)] > 0.9);
        assert_eq!(f[(1, 3)], 0.0);
    }

    #[test]
    fn combined_extractor_concatenates_modalities() {
        let emg = signal(48, 2, 4);
        let mocap = signal(48, 6, 5);
        let mut combined = FeatureSpec::new(12)
            .with_emg_channels(2)
            .with_mocap_cols(6)
            .build()
            .unwrap();
        let mut rows = Vec::new();
        for f in 0..48 {
            let mut row = emg.row(f).to_vec();
            row.extend_from_slice(mocap.row(f));
            if let Some(feat) = combined.push_sample(&row).unwrap() {
                rows.push(feat);
            }
        }
        assert_eq!(rows.len(), 4);
        let iav = iav_windows(&emg, &tumbling_ranges(48, 12)).unwrap();
        let wsvd = wsvd_windows(&mocap, &tumbling_ranges(48, 12)).unwrap();
        for (w, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), 8);
            for c in 0..2 {
                assert_eq!(row[c].to_bits(), iav[(w, c)].to_bits());
            }
            for c in 0..6 {
                assert_eq!(row[2 + c].to_bits(), wsvd[(w, c)].to_bits());
            }
        }
    }

    #[test]
    fn rejected_rows_leave_state_untouched() {
        let mocap = signal(32, 3, 6);
        let mut clean = WsvdExtractor::new(3, 8).unwrap();
        let mut abused = WsvdExtractor::new(3, 8).unwrap();
        let mut outs = (Vec::new(), Vec::new());
        for f in 0..32 {
            if f % 5 == 0 {
                assert!(abused.push_sample(&[1.0, f64::NAN, 0.0]).is_err());
                assert!(abused.push_sample(&[1.0, 2.0]).is_err());
            }
            if let Some(v) = clean.push_sample(mocap.row(f)).unwrap() {
                outs.0.push(v);
            }
            if let Some(v) = abused.push_sample(mocap.row(f)).unwrap() {
                outs.1.push(v);
            }
        }
        assert_eq!(outs.0.len(), 4);
        for (a, b) in outs.0.iter().zip(&outs.1) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn reset_restores_fresh_state_bitwise() {
        let mocap = signal(40, 3, 7);
        let mut ex = WsvdExtractor::new(3, 8).unwrap();
        let first = ex.extract_batch(&mocap).unwrap();
        ex.reset();
        let second = ex.extract_batch(&mocap).unwrap();
        for (a, b) in first.as_slice().iter().zip(second.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mav_normalizes_by_window_len() {
        let emg = Matrix::from_fn(8, 1, |_, _| 2.0);
        let mut raw = IavExtractor::new(1, 4);
        let mut mav = IavExtractor::mav(1, 4);
        let r = raw.extract_batch(&emg).unwrap();
        let m = mav.extract_batch(&emg).unwrap();
        assert_eq!(r[(0, 0)], 8.0);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn mean_pose_extractor_matches_range_kernel_bitwise() {
        let mocap = signal(60, 6, 8);
        let ranges = tumbling_ranges(60, 10);
        let batch = mean_pose_windows(&mocap, &ranges).unwrap();
        let mut ex = MeanPoseExtractor::new(6, 10);
        let streamed = ex.extract_batch(&mocap).unwrap();
        for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn spec_validates_shapes() {
        assert!(FeatureSpec::new(0).build().is_err());
        assert!(FeatureSpec::new(8).with_mocap_cols(7).build().is_err());
        assert!(WsvdExtractor::new(5, 8).is_err());
        let mut ex = FeatureSpec::new(8)
            .with_emg_channels(2)
            .with_mocap_cols(3)
            .build()
            .unwrap();
        assert!(ex.push_sample(&[0.0; 4]).is_err());
    }

    #[test]
    fn negative_zero_and_subnormals_are_preserved() {
        let mut emg_rows = vec![vec![-0.0f64], vec![f64::MIN_POSITIVE / 2.0]];
        emg_rows.extend(vec![vec![1.0]; 2]);
        let emg = Matrix::from_rows(&emg_rows).unwrap();
        let batch = iav_windows(&emg, &[(0, 4)]).unwrap();
        let mut ex = IavExtractor::new(1, 4);
        let streamed = ex.extract_batch(&emg).unwrap();
        assert_eq!(streamed[(0, 0)].to_bits(), batch[(0, 0)].to_bits());
        assert_eq!(batch[(0, 0)], 2.0 + f64::MIN_POSITIVE / 2.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Finite samples including awkward cases: -0.0, subnormals, huge and
    /// tiny magnitudes.
    fn sample() -> impl Strategy<Value = f64> {
        prop_oneof![
            -100.0..100.0f64,
            -100.0..100.0f64,
            -100.0..100.0f64,
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE / 4.0),
            Just(-f64::MIN_POSITIVE),
            -1.0e12..1.0e12f64,
        ]
    }

    fn window_case(
        max_cols: usize,
        col_step: usize,
    ) -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
        (8usize..=256, 1..=max_cols).prop_flat_map(move |(wl, cu)| {
            let cols = cu * col_step;
            // 2 full windows plus a ragged tail exercises the boundary and
            // the buffered remainder.
            let frames = 2 * wl + wl / 2;
            proptest::collection::vec(sample(), frames * cols)
                .prop_map(move |data| (wl, cols, data))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite invariant: incremental IAV is bit-identical to the
        /// batch range kernel for every window length in 8..=256.
        #[test]
        fn iav_incremental_is_bit_identical_to_batch((wl, cols, data) in window_case(4, 1)) {
            let frames = data.len() / cols;
            let emg = Matrix::from_vec(frames, cols, data).unwrap();
            let ranges: Vec<(usize, usize)> =
                (0..frames / wl).map(|i| (i * wl, (i + 1) * wl)).collect();
            let batch = iav_windows(&emg, &ranges).unwrap();
            let mut ex = IavExtractor::new(cols, wl);
            let streamed = ex.extract_batch(&emg).unwrap();
            prop_assert_eq!(streamed.shape(), batch.shape());
            for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// Same invariant for the warm-started WSVD chain.
        #[test]
        fn wsvd_incremental_is_bit_identical_to_batch((wl, cols, data) in window_case(2, 3)) {
            let frames = data.len() / cols;
            let mocap = Matrix::from_vec(frames, cols, data).unwrap();
            let ranges: Vec<(usize, usize)> =
                (0..frames / wl).map(|i| (i * wl, (i + 1) * wl)).collect();
            let batch = wsvd_windows(&mocap, &ranges).unwrap();
            let mut ex = WsvdExtractor::new(cols, wl).unwrap();
            let streamed = ex.extract_batch(&mocap).unwrap();
            prop_assert_eq!(streamed.shape(), batch.shape());
            for (a, b) in streamed.as_slice().iter().zip(batch.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for row in 0..streamed.rows() {
                for &v in streamed.row(row) {
                    prop_assert!(v.is_finite());
                }
            }
        }

        /// NaN / infinity anywhere in a row is rejected without consuming
        /// the row: the output stream equals the clean-input stream.
        #[test]
        fn non_finite_rows_are_rejected_atomically(
            (wl, cols, data) in window_case(2, 1),
            bad_at in 0usize..64,
            bad_kind in 0usize..3,
        ) {
            let frames = data.len() / cols;
            let emg = Matrix::from_vec(frames, cols, data).unwrap();
            let bad_value = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_kind];
            let mut clean = IavExtractor::new(cols, wl);
            let mut abused = IavExtractor::new(cols, wl);
            let mut bad_row = vec![0.0; cols];
            bad_row[bad_at % cols] = bad_value;
            let mut outs = (Vec::new(), Vec::new());
            for f in 0..frames {
                if f % 7 == 3 {
                    prop_assert!(abused.push_sample(&bad_row).is_err());
                }
                if let Some(v) = clean.push_sample(emg.row(f)).unwrap() {
                    outs.0.push(v);
                }
                if let Some(v) = abused.push_sample(emg.row(f)).unwrap() {
                    outs.1.push(v);
                }
            }
            prop_assert_eq!(outs.0.len(), outs.1.len());
            for (a, b) in outs.0.iter().zip(&outs.1) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
