//! Alternative EMG window features from the paper's related work.
//!
//! The paper (Sec. 2) situates IAV among other classic EMG features:
//! zero-crossings (Hudgins et al., ref \[7\] — the "time-domain set"
//! also counting slope-sign changes and waveform length) and the EMG
//! histogram (Zardoshti-Kermani et al., ref \[15\]). Implementing them
//! lets the ablation benches ask whether the paper's IAV choice matters.
//!
//! The kernels are defined on any sampled signal. On the paper's
//! *rectified envelope* stream (which is non-negative) zero-crossing-type
//! features are computed after removing the window mean, which restores
//! their discriminative meaning (oscillation of activity around its local
//! level).

use crate::error::{FeatureError, Result};
use kinemyo_linalg::Matrix;

/// Zero crossings of the mean-removed window with a noise deadband:
/// counts sign alternations whose amplitude step exceeds `threshold`.
pub fn zero_crossings(window: &[f64], threshold: f64) -> usize {
    if window.len() < 2 {
        return 0;
    }
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    let mut count = 0;
    let mut prev = window[0] - mean;
    for &x in &window[1..] {
        let v = x - mean;
        if prev * v < 0.0 && (v - prev).abs() > threshold {
            count += 1;
        }
        if v != 0.0 {
            prev = v;
        }
    }
    count
}

/// Slope-sign changes with a noise deadband (Hudgins TD feature).
pub fn slope_sign_changes(window: &[f64], threshold: f64) -> usize {
    if window.len() < 3 {
        return 0;
    }
    let mut count = 0;
    for i in 1..window.len() - 1 {
        let d1 = window[i] - window[i - 1];
        let d2 = window[i + 1] - window[i];
        if d1 * d2 < 0.0 && (d1.abs() > threshold || d2.abs() > threshold) {
            count += 1;
        }
    }
    count
}

/// Waveform length: cumulative absolute first difference (Hudgins TD).
pub fn waveform_length(window: &[f64]) -> f64 {
    window.windows(2).map(|w| (w[1] - w[0]).abs()).sum()
}

/// Willison amplitude: count of consecutive-sample jumps exceeding
/// `threshold`.
pub fn willison_amplitude(window: &[f64], threshold: f64) -> usize {
    window
        .windows(2)
        .filter(|w| (w[1] - w[0]).abs() > threshold)
        .count()
}

/// EMG histogram (ref \[15\]): the window's samples binned into `bins`
/// equal-width bins spanning `[lo, hi]`, normalized to sum to 1.
/// Out-of-range samples clamp into the edge bins.
pub fn emg_histogram(window: &[f64], bins: usize, lo: f64, hi: f64) -> Result<Vec<f64>> {
    if bins == 0 {
        return Err(FeatureError::ShapeMismatch {
            reason: "histogram needs at least one bin".into(),
        });
    }
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(FeatureError::ShapeMismatch {
            reason: format!("histogram range [{lo}, {hi}] is empty"),
        });
    }
    let mut h = vec![0.0; bins];
    if window.is_empty() {
        return Ok(h);
    }
    let width = (hi - lo) / bins as f64;
    for &x in window {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        h[idx] += 1.0;
    }
    let n = window.len() as f64;
    for v in &mut h {
        *v /= n;
    }
    Ok(h)
}

/// Which per-channel EMG window feature set to extract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmgFeatureSet {
    /// The paper's Integral of Absolute Value (Eq. 1): 1 value/channel.
    Iav,
    /// Hudgins time-domain set (ref \[7\]): MAV, zero crossings,
    /// slope-sign changes, waveform length — 4 values/channel. The
    /// `deadband` is the noise threshold for the counting features.
    HudginsTd {
        /// Noise deadband for ZC/SSC counting.
        deadband: f64,
    },
    /// EMG histogram (ref \[15\]): `bins` values/channel over `[0, hi]`
    /// (the envelope is non-negative).
    Histogram {
        /// Number of histogram bins.
        bins: usize,
        /// Upper edge of the binned amplitude range (volts).
        hi: f64,
    },
}

impl EmgFeatureSet {
    /// Output dimensionality per channel.
    pub fn dims_per_channel(&self) -> usize {
        match self {
            EmgFeatureSet::Iav => 1,
            EmgFeatureSet::HudginsTd { .. } => 4,
            EmgFeatureSet::Histogram { bins, .. } => *bins,
        }
    }
}

/// Windowed EMG features for a multi-channel matrix (`frames × channels`)
/// under the chosen feature set. Returns
/// `windows × (channels · dims_per_channel)`.
pub fn emg_features(emg: &Matrix, ranges: &[(usize, usize)], set: EmgFeatureSet) -> Result<Matrix> {
    let channels = emg.cols();
    let dpc = set.dims_per_channel();
    let mut out = Matrix::zeros(ranges.len(), channels * dpc);
    let mut window_buf: Vec<f64> = Vec::new();
    for (w, &(start, end)) in ranges.iter().enumerate() {
        if end > emg.rows() || start > end {
            return Err(FeatureError::ShapeMismatch {
                reason: format!(
                    "window {start}..{end} out of bounds for {} frames",
                    emg.rows()
                ),
            });
        }
        for ch in 0..channels {
            window_buf.clear();
            window_buf.extend((start..end).map(|f| emg[(f, ch)]));
            let base = ch * dpc;
            match set {
                EmgFeatureSet::Iav => {
                    out[(w, base)] = window_buf.iter().map(|v| v.abs()).sum();
                }
                EmgFeatureSet::HudginsTd { deadband } => {
                    let n = window_buf.len().max(1) as f64;
                    out[(w, base)] = window_buf.iter().map(|v| v.abs()).sum::<f64>() / n; // MAV
                    out[(w, base + 1)] = zero_crossings(&window_buf, deadband) as f64;
                    out[(w, base + 2)] = slope_sign_changes(&window_buf, deadband) as f64;
                    out[(w, base + 3)] = waveform_length(&window_buf);
                }
                EmgFeatureSet::Histogram { bins, hi } => {
                    let h = emg_histogram(&window_buf, bins, 0.0, hi)?;
                    for (i, v) in h.into_iter().enumerate() {
                        out[(w, base + i)] = v;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_crossings_of_alternating_signal() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0];
        assert_eq!(zero_crossings(&x, 0.1), 4);
        // Below-deadband wiggles are ignored.
        let tiny = [0.01, -0.01, 0.01, -0.01];
        assert_eq!(zero_crossings(&tiny, 0.1), 0);
        assert_eq!(zero_crossings(&[1.0], 0.0), 0);
    }

    #[test]
    fn zero_crossings_are_mean_invariant() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0];
        let shifted: Vec<f64> = x.iter().map(|v| v + 100.0).collect();
        assert_eq!(zero_crossings(&x, 0.1), zero_crossings(&shifted, 0.1));
    }

    #[test]
    fn slope_sign_changes_counts_turns() {
        // up, down, up, down → 3 turning points.
        let x = [0.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(slope_sign_changes(&x, 0.1), 3);
        assert_eq!(slope_sign_changes(&[0.0, 1.0], 0.1), 0);
        // Monotone ramp has none.
        let ramp = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(slope_sign_changes(&ramp, 0.1), 0);
    }

    #[test]
    fn waveform_length_known() {
        assert_eq!(waveform_length(&[0.0, 1.0, -1.0]), 3.0);
        assert_eq!(waveform_length(&[5.0]), 0.0);
    }

    #[test]
    fn willison_counts_large_jumps() {
        let x = [0.0, 0.05, 1.0, 1.02, 0.0];
        assert_eq!(willison_amplitude(&x, 0.5), 2); // 0.05→1.0 and 1.02→0.0
    }

    #[test]
    fn histogram_is_normalized_and_clamped() {
        let x = [0.1, 0.1, 0.9, 5.0, -1.0];
        let h = emg_histogram(&x, 2, 0.0, 1.0).unwrap();
        assert_eq!(h.len(), 2);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h[0], 3.0 / 5.0); // 0.1, 0.1 and the clamped -1.0
        assert_eq!(h[1], 2.0 / 5.0); // 0.9 and the clamped 5.0
        assert!(emg_histogram(&x, 0, 0.0, 1.0).is_err());
        assert!(emg_histogram(&x, 2, 1.0, 1.0).is_err());
        assert_eq!(emg_histogram(&[], 3, 0.0, 1.0).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn feature_set_dimensions() {
        assert_eq!(EmgFeatureSet::Iav.dims_per_channel(), 1);
        assert_eq!(
            EmgFeatureSet::HudginsTd { deadband: 0.0 }.dims_per_channel(),
            4
        );
        assert_eq!(
            EmgFeatureSet::Histogram { bins: 9, hi: 1.0 }.dims_per_channel(),
            9
        );
    }

    #[test]
    fn windowed_extraction_shapes() {
        let emg = Matrix::from_fn(24, 2, |r, c| ((r + c) as f64 * 0.9).sin().abs() * 1e-3);
        let ranges = [(0usize, 12usize), (12, 24)];
        let iav = emg_features(&emg, &ranges, EmgFeatureSet::Iav).unwrap();
        assert_eq!(iav.shape(), (2, 2));
        let td = emg_features(&emg, &ranges, EmgFeatureSet::HudginsTd { deadband: 1e-6 }).unwrap();
        assert_eq!(td.shape(), (2, 8));
        let hist = emg_features(
            &emg,
            &ranges,
            EmgFeatureSet::Histogram { bins: 5, hi: 1e-3 },
        )
        .unwrap();
        assert_eq!(hist.shape(), (2, 10));
        // Histogram rows normalize per channel.
        for w in 0..2 {
            let ch0: f64 = (0..5).map(|i| hist[(w, i)]).sum();
            assert!((ch0 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn iav_path_matches_dedicated_function() {
        let emg = Matrix::from_fn(30, 3, |r, c| ((r * 3 + c) as f64).sin());
        let ranges = [(0usize, 15usize), (15, 30)];
        let via_set = emg_features(&emg, &ranges, EmgFeatureSet::Iav).unwrap();
        let direct = crate::extract::iav_windows(&emg, &ranges).unwrap();
        assert!(via_set.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let emg = Matrix::zeros(5, 1);
        assert!(emg_features(&emg, &[(0, 9)], EmgFeatureSet::Iav).is_err());
    }
}
