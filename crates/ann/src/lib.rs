//! # kinemyo-ann
//!
//! A hand-written, fully deterministic HNSW-style approximate
//! nearest-neighbour index over the paper's `2c`-length motion feature
//! vectors — the retrieval backend for the ROADMAP's 10⁶–10⁷-motion
//! target, where every exact backend in kinemyo-modb (linear, VP-tree,
//! iDistance, hybrid) degrades to brute force.
//!
//! * [`graph`] — [`AnnIndex`]: a navigable small-world graph with seeded
//!   integer-arithmetic level assignment, `f64::total_cmp` candidate
//!   ordering, and fixed-order neighbour pruning, so construction is
//!   **bit-identical run-to-run and thread-count-independent**;
//! * [`quant`](mod@graph) — an optional scalar-quantized point store
//!   (one `u8` per dimension, per-column min/max reconstruction) used
//!   only during graph traversal; the final candidate pool is always
//!   re-ranked with exact f64 distances before the top-k cut.
//!
//! The index mirrors the append story of
//! [`HybridIndex`](kinemyo_modb::HybridIndex): the graph covers the
//! stable prefix of an append-only [`FeatureDb`](kinemyo_modb::FeatureDb)
//! and entries appended afterwards are merged in by an exact linear tail
//! scan, so freshly ingested motions are never invisible.
//!
//! Unlike the exact backends, [`AnnIndex::knn`] returns *approximately*
//! the k nearest neighbours: the contract is a measured recall@k (the
//! test suite and `BENCH_ann.json` pin recall@10 ≥ 0.95 against the
//! linear scan), with every *reported* distance exact.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod graph;
mod quant;

pub use graph::{AnnIndex, AnnParams};
