//! Deterministic HNSW-style navigable small-world graph.
//!
//! The index is a standard hierarchical NSW (Malkov & Yashunin): every
//! point gets a geometrically distributed top level, each level holds a
//! bounded-degree proximity graph, and queries greedily descend from the
//! top entry point, widening to an `ef`-sized best-first beam on the
//! bottom layer. Three choices make this implementation reproducible to
//! the byte, per the workspace determinism discipline:
//!
//! 1. **Seeded integer level assignment.** Levels come from a splitmix64
//!    stream keyed by `(seed, node position)` compared against
//!    `u64::MAX / m` — a geometric draw in pure integer arithmetic, so no
//!    `ln()` call whose libm rounding could differ across platforms.
//! 2. **Total-order candidate ranking.** Every heap and sort orders by
//!    `(f64::total_cmp on distance, node position)`; no `partial_cmp`,
//!    no hash iteration, no ties left to chance.
//! 3. **Fixed-order pruning + sequential construction.** Neighbour lists
//!    are pruned from a `(distance, position)`-sorted candidate list and
//!    nodes are inserted strictly in database order, so the built graph
//!    is a pure function of `(points, params)` — independent of thread
//!    count, repeated runs, or allocator behaviour. [`AnnIndex::encode`]
//!    serializes the graph canonically so tests can assert byte equality.

use crate::quant::QuantStore;
use kinemyo_linalg::vector::{euclidean, sq_euclidean};
use kinemyo_modb::error::{DbError, Result};
use kinemyo_modb::knn::{scan_entries, Neighbor};
use kinemyo_modb::store::FeatureDb;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Hard cap on the level assignment; a geometric draw with p = 1/m needs
/// ~m^24 points to reach this, far beyond any realistic database.
const MAX_LEVEL: usize = 24;

/// Construction and search parameters for [`AnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnParams {
    /// Maximum neighbours per node on levels ≥ 1; level 0 keeps `2 * m`.
    pub m: usize,
    /// Beam width while inserting: wider beams find better neighbours and
    /// build a higher-recall graph, at higher build cost.
    pub ef_construction: usize,
    /// Beam width while querying: the recall/latency knob. The whole
    /// `ef_search` pool is exact-re-ranked before the top-k cut.
    pub ef_search: usize,
    /// Seed for the deterministic level assignment.
    pub seed: u64,
    /// Keep a scalar-quantized (u8/dimension) copy of the points and
    /// traverse with it; reported distances stay exact via re-ranking.
    pub quantize: bool,
}

impl Default for AnnParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 128,
            ef_search: 96,
            seed: 0x6b69_6e65_6d79_6f21, // "kinemyo!"
            quantize: false,
        }
    }
}

impl AnnParams {
    /// Sets the per-node degree bound.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Sets the construction beam width.
    pub fn with_ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef;
        self
    }

    /// Sets the query beam width.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef;
        self
    }

    /// Sets the level-assignment seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the quantized traversal store.
    pub fn with_quantize(mut self, quantize: bool) -> Self {
        self.quantize = quantize;
        self
    }

    /// Clamps degenerate values to the smallest sane configuration.
    fn normalized(mut self) -> Self {
        self.m = self.m.max(2);
        self.ef_construction = self.ef_construction.max(self.m);
        self.ef_search = self.ef_search.max(1);
        self
    }
}

/// One traversal candidate: squared distance plus node position. The
/// ordering is the workspace's total order — distance first via
/// `f64::total_cmp`, node position as the deterministic tie-break.
#[derive(Debug, Clone, Copy)]
struct Cand {
    d: f64,
    idx: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.d.total_cmp(&other.d).then(self.idx.cmp(&other.idx))
    }
}

/// Epoch-stamped visited marker: clearing between beam searches is a
/// counter bump, not an O(n) wipe.
struct VisitedSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) {
        if self.epoch == u32::MAX {
            for s in &mut self.stamp {
                *s = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `idx` visited; true when it was not yet visited this epoch.
    fn mark(&mut self, idx: u32) -> bool {
        match self.stamp.get_mut(idx as usize) {
            Some(s) if *s != self.epoch => {
                *s = self.epoch;
                true
            }
            _ => false,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Geometric level draw with success probability `1/m`, in pure integer
/// arithmetic: each stream value below `u64::MAX / m` promotes one level.
fn level_for(seed: u64, node: u64, m: usize) -> usize {
    let mut state = seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let threshold = u64::MAX / (m.max(2) as u64);
    let mut level = 0;
    while level < MAX_LEVEL && splitmix64(&mut state) < threshold {
        level += 1;
    }
    level
}

/// A deterministic approximate kNN index over an append-only
/// [`FeatureDb`]: HNSW graph over the first [`covered`](Self::covered)
/// entries, exact linear scan over the appended tail, candidate lists
/// merged with the same prefix-wins-ties rule as
/// [`HybridIndex`](kinemyo_modb::HybridIndex).
#[derive(Debug, Clone)]
pub struct AnnIndex<M> {
    params: AnnParams,
    dim: usize,
    /// Indexed points, row-major `covered × dim` — node `i` is the entry
    /// at database position `i` at build time.
    points: Vec<f64>,
    ids: Vec<usize>,
    metas: Vec<M>,
    levels: Vec<u8>,
    /// `links[node][level]` → neighbour node positions.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: u8,
    quant: Option<QuantStore>,
}

impl<M: Clone> AnnIndex<M> {
    /// Builds the graph over the current contents of `db` (sequentially —
    /// construction is a pure function of the point sequence and
    /// `params`, so the result is identical at any thread count).
    /// Entries appended afterwards are handled by the exact tail scan.
    pub fn build(db: &FeatureDb<M>, params: AnnParams) -> Self {
        let params = params.normalized();
        let dim = db.dim();
        let n = db.len();
        let mut index = Self {
            params,
            dim,
            points: Vec::with_capacity(n * dim),
            ids: Vec::with_capacity(n),
            metas: Vec::with_capacity(n),
            levels: Vec::with_capacity(n),
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            quant: None,
        };
        for e in db.entries() {
            index.points.extend_from_slice(&e.vector);
            index.ids.push(e.id);
            index.metas.push(e.meta.clone());
        }
        let mut visited = VisitedSet::new(n);
        for i in 0..n {
            index.insert_node(i as u32, &mut visited);
        }
        if params.quantize && n > 0 && dim > 0 {
            index.quant = Some(QuantStore::build(&index.points, n, dim));
        }
        index
    }

    /// The parameters the index was built with (post-normalization).
    pub fn params(&self) -> &AnnParams {
        &self.params
    }

    /// Number of database entries covered by the graph (the prefix length
    /// at build time).
    pub fn covered(&self) -> usize {
        self.ids.len()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the graph covers no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// How many entries have been appended to `db` since this index was
    /// built — the tail the query path scans exactly.
    pub fn stale_appends<N>(&self, db: &FeatureDb<N>) -> usize {
        db.len().saturating_sub(self.covered())
    }

    /// Approximate k-nearest-neighbour query over graph prefix + exact
    /// tail.
    ///
    /// `db` must be the same append-only database the index was built
    /// from. Reported distances are always exact f64 Euclidean distances
    /// (the traversal pool is re-ranked before the cut); approximation
    /// only shows up as possibly missing a true neighbour, bounded in
    /// practice by the measured recall@k of the parameter choice.
    pub fn knn(&self, db: &FeatureDb<M>, query: &[f64], k: usize) -> Result<Vec<Neighbor<M>>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        db.check_query(query)?;
        if db.len() < self.covered() {
            return Err(DbError::InvalidArgument {
                reason: format!(
                    "database has {} entries but the index covers {}; ANN queries \
                     require the append-only database the index was built from",
                    db.len(),
                    self.covered()
                ),
            });
        }
        if db.dim() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: db.dim(),
            });
        }
        let from_graph = if self.is_empty() {
            Vec::new()
        } else {
            self.graph_knn(query, k, self.params.ef_search)?
        };
        let tail = db.entries().get(self.covered()..).unwrap_or(&[]);
        let from_tail = scan_entries(tail, query, k);

        // Merge the two sorted candidate lists; on exact distance ties the
        // graph prefix (earlier database position) wins, matching the
        // hybrid index's merge rule.
        let mut merged = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while merged.len() < k && (i < from_graph.len() || j < from_tail.len()) {
            let take_graph = match (from_graph.get(i), from_tail.get(j)) {
                (Some(a), Some(b)) => a.distance.total_cmp(&b.distance).is_le(),
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_graph {
                merged.push(from_graph[i].clone());
                i += 1;
            } else {
                merged.push(from_tail[j].clone());
                j += 1;
            }
        }
        Ok(merged)
    }

    /// Graph-only query with an explicit beam width: descends to the
    /// bottom layer, collects a `max(ef, k)`-sized pool, re-ranks it with
    /// exact distances, and returns the top `k` closest-first. Used by
    /// [`knn`](Self::knn) with `ef = ef_search` and by the bench sweep to
    /// trace the recall/latency curve without rebuilding.
    pub fn graph_knn(&self, query: &[f64], k: usize, ef: usize) -> Result<Vec<Neighbor<M>>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        if query.len() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let ef = ef.max(k).max(1);
        let mut visited = VisitedSet::new(self.len());
        let pool = match &self.quant {
            Some(qs) => {
                let dist = |idx: u32| qs.sq_dist(query, idx as usize);
                self.descend(&dist, ef, &mut visited)
            }
            None => {
                let dist = |idx: u32| sq_euclidean(self.point(idx), query);
                self.descend(&dist, ef, &mut visited)
            }
        };
        // Exact re-rank of the whole pool: traversal distances are squared
        // (and possibly quantized); reported distances must be the true
        // Euclidean metric, ties broken by database position like the
        // linear scan's preference for earlier entries.
        let mut exact: Vec<Cand> = pool
            .iter()
            .map(|c| Cand {
                d: euclidean(self.point(c.idx), query),
                idx: c.idx,
            })
            .collect();
        exact.sort_unstable();
        exact.truncate(k);
        Ok(exact
            .into_iter()
            .map(|c| Neighbor {
                id: self.ids.get(c.idx as usize).copied().unwrap_or(usize::MAX),
                meta: self.meta(c.idx),
                distance: c.d,
            })
            .collect())
    }

    /// Canonical byte serialization of the built graph: header (format
    /// tag, dimension, size, build parameters, entry point), then every
    /// node's level and per-level adjacency in insertion order, then the
    /// quantized store when present. `ef_search` is deliberately excluded
    /// — it is a query-time knob that does not shape the graph. Two
    /// builds over the same points with the same parameters must produce
    /// equal bytes; the determinism tests assert exactly that.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"KANN1");
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.m as u64).to_le_bytes());
        out.extend_from_slice(&(self.params.ef_construction as u64).to_le_bytes());
        out.extend_from_slice(&self.params.seed.to_le_bytes());
        out.push(self.params.quantize as u8);
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.push(self.max_level);
        for (node, per_level) in self.links.iter().enumerate() {
            out.push(self.levels.get(node).copied().unwrap_or(0));
            for level in per_level {
                out.extend_from_slice(&(level.len() as u32).to_le_bytes());
                for &nb in level {
                    out.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        if let Some(q) = &self.quant {
            q.encode_into(&mut out);
        }
        out
    }

    /// Full query-path traversal: greedy single-candidate descent from
    /// the top entry point to level 1, then an `ef`-wide beam on the
    /// bottom layer. Returns the raw candidate pool in traversal metric.
    fn descend<F: Fn(u32) -> f64>(
        &self,
        dist: &F,
        ef: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Cand> {
        let mut ep = vec![Cand {
            d: dist(self.entry),
            idx: self.entry,
        }];
        let mut level = self.max_level as usize;
        while level > 0 {
            ep = self.search_layer(dist, &ep, 1, level, visited);
            level -= 1;
        }
        self.search_layer(dist, &ep, ef, 0, visited)
    }

    #[inline]
    fn point(&self, idx: u32) -> &[f64] {
        let start = idx as usize * self.dim;
        self.points.get(start..start + self.dim).unwrap_or(&[])
    }

    fn meta(&self, idx: u32) -> M {
        match self.metas.get(idx as usize) {
            Some(m) => m.clone(),
            // Unreachable: idx always comes from the graph, which only
            // holds positions < metas.len(). Kept total for panic-freedom.
            None => self.metas[0].clone(),
        }
    }

    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn insert_node(&mut self, i: u32, visited: &mut VisitedSet) {
        let node_level = level_for(self.params.seed, i as u64, self.params.m);
        self.levels.push(node_level as u8);
        self.links.push(vec![Vec::new(); node_level + 1]);
        if i == 0 {
            self.entry = 0;
            self.max_level = node_level as u8;
            return;
        }
        let q = self.point(i).to_vec();
        let top = self.max_level as usize;
        let mut ep = vec![Cand {
            d: sq_euclidean(self.point(self.entry), &q),
            idx: self.entry,
        }];
        // Greedy single-candidate descent through the levels above the new
        // node's top level.
        let mut level = top;
        while level > node_level {
            ep = self.search_layer(
                &|idx| sq_euclidean(self.point(idx), &q),
                &ep,
                1,
                level,
                visited,
            );
            level -= 1;
        }
        // Wide-beam insertion on every level the node participates in.
        let mut level = node_level.min(top);
        loop {
            let cands = self.search_layer(
                &|idx| sq_euclidean(self.point(idx), &q),
                &ep,
                self.params.ef_construction,
                level,
                visited,
            );
            let cap = self.max_links(level);
            let selected = self.select_heuristic(&cands, cap);
            for c in &selected {
                if let Some(ls) = self
                    .links
                    .get_mut(i as usize)
                    .and_then(|l| l.get_mut(level))
                {
                    ls.push(c.idx);
                }
            }
            for c in &selected {
                let overflow = match self
                    .links
                    .get_mut(c.idx as usize)
                    .and_then(|l| l.get_mut(level))
                {
                    Some(ls) => {
                        ls.push(i);
                        ls.len() > cap
                    }
                    None => false,
                };
                if overflow {
                    self.prune_links(c.idx, level, cap);
                }
            }
            ep = cands;
            if level == 0 {
                break;
            }
            level -= 1;
        }
        if node_level > top {
            self.entry = i;
            self.max_level = node_level as u8;
        }
    }

    /// Best-first beam search on one level: expands the nearest frontier
    /// candidate until no frontier entry can improve the `ef` best found.
    /// Both heaps order by `(total_cmp distance, position)`, so the visit
    /// sequence — and therefore the graph built from it — is fully
    /// deterministic.
    fn search_layer<F: Fn(u32) -> f64>(
        &self,
        dist: &F,
        eps: &[Cand],
        ef: usize,
        level: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Cand> {
        visited.next_epoch();
        let mut results: BinaryHeap<Cand> = BinaryHeap::new();
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        for &c in eps {
            if visited.mark(c.idx) {
                results.push(c);
                frontier.push(Reverse(c));
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(c)) = frontier.pop() {
            let worst = match results.peek() {
                Some(w) => w.d,
                None => f64::INFINITY,
            };
            if results.len() >= ef && c.d.total_cmp(&worst) == Ordering::Greater {
                break;
            }
            let neighbours = match self.links.get(c.idx as usize).and_then(|l| l.get(level)) {
                Some(n) => n,
                None => continue,
            };
            for &nb in neighbours {
                if !visited.mark(nb) {
                    continue;
                }
                let d = dist(nb);
                let worst = match results.peek() {
                    Some(w) => w.d,
                    None => f64::INFINITY,
                };
                if results.len() < ef || d.total_cmp(&worst) == Ordering::Less {
                    let cand = Cand { d, idx: nb };
                    frontier.push(Reverse(cand));
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Malkov's neighbour-selection heuristic over a `(distance,
    /// position)`-sorted candidate list: a candidate is kept only if it is
    /// closer to the query than to every already-selected neighbour
    /// (spreading edges across directions instead of clustering them),
    /// then remaining slots are filled from the discarded list in the same
    /// fixed order.
    fn select_heuristic(&self, cands: &[Cand], cap: usize) -> Vec<Cand> {
        let mut selected: Vec<Cand> = Vec::with_capacity(cap);
        let mut discarded: Vec<Cand> = Vec::new();
        for &c in cands {
            if selected.len() >= cap {
                break;
            }
            let keep = selected.iter().all(|s| {
                sq_euclidean(self.point(c.idx), self.point(s.idx))
                    .total_cmp(&c.d)
                    .is_ge()
            });
            if keep {
                selected.push(c);
            } else {
                discarded.push(c);
            }
        }
        for &c in &discarded {
            if selected.len() >= cap {
                break;
            }
            selected.push(c);
        }
        selected
    }

    /// Re-prunes an overflowing neighbour list with the same heuristic,
    /// relative to the owning node. The candidate list is re-sorted by
    /// `(distance, position)` first, so the surviving set depends only on
    /// its membership — not on the order edges happened to arrive.
    fn prune_links(&mut self, node: u32, level: usize, cap: usize) {
        let p = self.point(node).to_vec();
        let current = match self.links.get(node as usize).and_then(|l| l.get(level)) {
            Some(ls) => ls.clone(),
            None => return,
        };
        let mut cands: Vec<Cand> = current
            .iter()
            .map(|&x| Cand {
                d: sq_euclidean(self.point(x), &p),
                idx: x,
            })
            .collect();
        cands.sort_unstable();
        let selected = self.select_heuristic(&cands, cap);
        if let Some(ls) = self
            .links
            .get_mut(node as usize)
            .and_then(|l| l.get_mut(level))
        {
            *ls = selected.iter().map(|c| c.idx).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_modb::knn::knn;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Cluster centers shared by the data and query generators.
    fn centers(dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..6)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 20.0).collect())
            .collect()
    }

    /// Clustered synthetic data resembling post-pipeline feature vectors:
    /// a few well-separated centers with noise around them.
    fn clustered_db(n: usize, dim: usize, seed: u64) -> FeatureDb<usize> {
        let centers = centers(dim, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDB);
        let mut db = FeatureDb::new(dim);
        for i in 0..n {
            let c = &centers[i % centers.len()];
            let v: Vec<f64> = c
                .iter()
                .map(|&x| x + (rng.random::<f64>() - 0.5) * 4.0)
                .collect();
            db.insert(i, i % centers.len(), v).unwrap();
        }
        db
    }

    /// Queries drawn from the same cluster distribution as the data (with
    /// wider noise) — the workload shape of the pipeline, where a query
    /// motion's feature vector lands near stored motions of its class.
    /// `db_seed` must match the database so both share centers.
    fn queries(n: usize, dim: usize, db_seed: u64, query_seed: u64) -> Vec<Vec<f64>> {
        let centers = centers(dim, db_seed);
        let mut rng = ChaCha8Rng::seed_from_u64(query_seed);
        (0..n)
            .map(|i| {
                centers[i % centers.len()]
                    .iter()
                    .map(|&x| x + (rng.random::<f64>() - 0.5) * 6.0)
                    .collect()
            })
            .collect()
    }

    fn recall_at_k(
        index: &AnnIndex<usize>,
        db: &FeatureDb<usize>,
        qs: &[Vec<f64>],
        k: usize,
    ) -> f64 {
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in qs {
            let exact = knn(db, q, k).unwrap();
            let approx = index.knn(db, q, k).unwrap();
            let truth: Vec<usize> = exact.iter().map(|n| n.id).collect();
            total += truth.len();
            hit += approx.iter().filter(|n| truth.contains(&n.id)).count();
        }
        hit as f64 / total as f64
    }

    #[test]
    fn recall_at_10_beats_095_across_seeds_and_sizes() {
        for &(n, seed) in &[(600usize, 11u64), (1500, 12), (3000, 13)] {
            let db = clustered_db(n, 16, seed);
            let index = AnnIndex::build(&db, AnnParams::default());
            let r = recall_at_k(&index, &db, &queries(30, 16, seed, seed + 100), 10);
            assert!(r >= 0.95, "recall {r} at n={n} seed={seed}");
        }
    }

    #[test]
    fn quantized_recall_at_10_beats_095() {
        let db = clustered_db(2000, 16, 21);
        let index = AnnIndex::build(&db, AnnParams::default().with_quantize(true));
        let r = recall_at_k(&index, &db, &queries(30, 16, 21, 121), 10);
        assert!(r >= 0.95, "quantized recall {r}");
    }

    #[test]
    fn reported_distances_are_exact_even_when_quantized() {
        let db = clustered_db(800, 8, 31);
        let index = AnnIndex::build(&db, AnnParams::default().with_quantize(true));
        for q in queries(10, 8, 31, 131) {
            let exact = knn(&db, &q, 5).unwrap();
            for n in index.knn(&db, &q, 5).unwrap() {
                // Every returned id's distance must equal the linear scan's
                // distance for that id bit-for-bit: re-ranking recomputes
                // with the same euclidean kernel.
                let truth = exact.iter().find(|e| e.id == n.id);
                if let Some(t) = truth {
                    assert_eq!(t.distance.to_bits(), n.distance.to_bits());
                }
                let stored = db.entries().iter().find(|e| e.id == n.id).unwrap();
                let d = euclidean(&stored.vector, &q);
                assert_eq!(d.to_bits(), n.distance.to_bits());
            }
        }
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let db = clustered_db(1200, 12, 41);
        let params = AnnParams::default().with_quantize(true);
        let a = AnnIndex::build(&db, params);
        let b = AnnIndex::build(&db, params);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn different_seeds_build_different_graphs() {
        let db = clustered_db(400, 6, 51);
        let a = AnnIndex::build(&db, AnnParams::default().with_seed(1));
        let b = AnnIndex::build(&db, AnnParams::default().with_seed(2));
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn appended_tail_is_always_visible() {
        let mut db = clustered_db(500, 8, 61);
        let index = AnnIndex::build(&db, AnnParams::default());
        assert_eq!(index.covered(), 500);
        // Append an exact match for a probe query: it must come back
        // first even though the graph has never seen it.
        let probe: Vec<f64> = (0..8).map(|j| 100.0 + j as f64).collect();
        db.insert(500, 99, probe.clone()).unwrap();
        assert_eq!(index.stale_appends(&db), 1);
        let r = index.knn(&db, &probe, 3).unwrap();
        assert_eq!(r[0].id, 500);
        assert!(r[0].distance < 1e-12);
    }

    #[test]
    fn small_databases_are_exact() {
        // ef_search ≥ n ⇒ the beam holds every reachable node and the
        // merge with the exact tail covers the rest.
        for n in [1usize, 2, 5, 40] {
            let db = clustered_db(n, 4, 71);
            let index = AnnIndex::build(&db, AnnParams::default());
            let qs = queries(10, 4, 71, 171);
            for q in &qs {
                let exact = knn(&db, q, n.min(7)).unwrap();
                let approx = index.knn(&db, q, n.min(7)).unwrap();
                assert_eq!(exact.len(), approx.len());
                for (a, b) in exact.iter().zip(&approx) {
                    assert_eq!(a.id, b.id, "n={n}");
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
        }
    }

    #[test]
    fn k_larger_than_db_returns_all() {
        let db = clustered_db(25, 4, 81);
        let index = AnnIndex::build(&db, AnnParams::default());
        let r = index.knn(&db, &[0.0; 4], 100).unwrap();
        assert_eq!(r.len(), 25);
        for w in r.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn validation_errors() {
        let db = clustered_db(10, 3, 91);
        let index = AnnIndex::build(&db, AnnParams::default());
        assert!(index.knn(&db, &[0.0], 1).is_err());
        assert!(index.knn(&db, &[0.0, 0.0, 0.0], 0).is_err());
        let empty: FeatureDb<usize> = FeatureDb::new(3);
        assert!(index.knn(&empty, &[0.0, 0.0, 0.0], 1).is_err());
        let eindex = AnnIndex::build(&empty, AnnParams::default());
        assert!(eindex.knn(&empty, &[0.0, 0.0, 0.0], 1).is_err());
    }

    #[test]
    fn empty_graph_over_growing_db_is_pure_linear() {
        let empty: FeatureDb<usize> = FeatureDb::new(2);
        let index = AnnIndex::build(&empty, AnnParams::default());
        assert_eq!(index.covered(), 0);
        let mut db: FeatureDb<usize> = FeatureDb::new(2);
        db.insert(0, 0, vec![0.0, 0.0]).unwrap();
        db.insert(1, 1, vec![3.0, 4.0]).unwrap();
        let r = index.knn(&db, &[0.0, 0.0], 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 0);
        assert!((r[1].distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn level_assignment_is_geometric_and_seeded() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        for i in 0..100_000u64 {
            counts[level_for(7, i, 16)] += 1;
        }
        // p(level ≥ 1) = 1/16: expect ~6250, allow generous slack.
        let promoted: usize = counts[1..].iter().sum();
        assert!((5000..8000).contains(&promoted), "promoted {promoted}");
        // Same seed reproduces, different seed diverges somewhere.
        assert_eq!(level_for(7, 42, 16), level_for(7, 42, 16));
        assert!((0..1000).any(|i| level_for(7, i, 16) != level_for(8, i, 16)));
    }

    #[test]
    fn graph_knn_ef_sweep_is_monotone_in_pool_size() {
        let db = clustered_db(1000, 8, 101);
        let index = AnnIndex::build(&db, AnnParams::default());
        let qs = queries(20, 8, 101, 201);
        let mut last = 0.0;
        for ef in [8usize, 32, 128] {
            let mut hit = 0;
            let mut total = 0;
            for q in &qs {
                let exact = knn(&db, q, 10).unwrap();
                let truth: Vec<usize> = exact.iter().map(|n| n.id).collect();
                let approx = index.graph_knn(q, 10, ef).unwrap();
                total += truth.len();
                hit += approx.iter().filter(|n| truth.contains(&n.id)).count();
            }
            let r = hit as f64 / total as f64;
            // Wider beams should not get meaningfully worse.
            assert!(r + 0.05 >= last, "recall dropped: {last} -> {r} at ef={ef}");
            last = r;
        }
        assert!(last >= 0.95, "recall {last} at ef=128");
    }
}
