//! Scalar-quantized point store: one `u8` code per dimension with
//! per-column min/step reconstruction.
//!
//! Quantization shrinks the traversal working set 8× (1 byte instead of 8
//! per component), which is what the graph walk is actually bound by at
//! million-motion scale — the arithmetic per visited node is unchanged.
//! Codes are used **only** to order candidates during traversal; the
//! final candidate pool is always re-ranked with exact f64 distances
//! (see [`AnnIndex::knn`](crate::AnnIndex::knn)), so quantization error
//! can only affect which candidates reach the pool, never the distances
//! reported to callers.

use kinemyo_linalg::ColMajorMatrix;

/// Quantized copy of the indexed points, row-major like the exact store:
/// component `j` of point `i` reconstructs as `mins[j] + code * steps[j]`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuantStore {
    dim: usize,
    mins: Vec<f64>,
    steps: Vec<f64>,
    codes: Vec<u8>,
}

impl QuantStore {
    /// Quantizes `points` (`n × dim`, row-major). The per-column min/max
    /// ranges are taken over a [`ColMajorMatrix`] transpose so each
    /// column is scanned contiguously.
    pub(crate) fn build(points: &[f64], n: usize, dim: usize) -> Self {
        let mut cm = ColMajorMatrix::zeros(n, dim);
        for j in 0..dim {
            let col = cm.col_mut(j);
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = points.get(i * dim + j).copied().unwrap_or(0.0);
            }
        }
        let mut mins = vec![0.0; dim];
        let mut steps = vec![0.0; dim];
        for j in 0..dim {
            let col = cm.col(j);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in col {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if n > 0 {
                mins[j] = lo;
                // A constant column quantizes to code 0 with step 0.
                steps[j] = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
            }
        }
        let mut codes = vec![0u8; n * dim];
        for (flat, code) in codes.iter_mut().enumerate() {
            let j = flat % dim.max(1);
            let s = steps[j];
            if s > 0.0 {
                let v = points.get(flat).copied().unwrap_or(0.0);
                // Round to nearest code; the range cap makes the cast safe
                // even at the top of the column range.
                let q = ((v - mins[j]) / s + 0.5).floor();
                *code = if q >= 255.0 { 255 } else { q.max(0.0) as u8 };
            }
        }
        Self {
            dim,
            mins,
            steps,
            codes,
        }
    }

    /// Squared distance between an (exact, f64) query and the
    /// reconstructed quantized point `node` — the asymmetric distance
    /// used for graph traversal.
    #[inline]
    pub(crate) fn sq_dist(&self, query: &[f64], node: usize) -> f64 {
        let start = node * self.dim;
        let codes = match self.codes.get(start..start + self.dim) {
            Some(c) => c,
            None => return f64::INFINITY,
        };
        let mut acc = 0.0;
        for j in 0..self.dim {
            let v = self.mins[j] + codes[j] as f64 * self.steps[j];
            let d = query[j] - v;
            acc += d * d;
        }
        acc
    }

    /// Appends the deterministic byte serialization (column ranges then
    /// codes, all little-endian) used by
    /// [`AnnIndex::encode`](crate::AnnIndex::encode).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        for j in 0..self.dim {
            out.extend_from_slice(&self.mins[j].to_bits().to_le_bytes());
            out.extend_from_slice(&self.steps[j].to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.codes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_within_half_step() {
        let points = vec![0.0, 10.0, 1.0, 20.0, 0.5, 12.5, 0.25, 17.0];
        let q = QuantStore::build(&points, 4, 2);
        for i in 0..4 {
            let exact: f64 = {
                let p = &points[i * 2..i * 2 + 2];
                0.0_f64.max(p.iter().map(|v| v * v).sum::<f64>())
            };
            // Reconstruction error per component is at most step/2, so the
            // squared distance to the point itself is tiny.
            let d = q.sq_dist(&points[i * 2..i * 2 + 2], i);
            assert!(d <= exact.max(1.0) * 1e-4, "node {i}: sq_dist {d}");
        }
    }

    #[test]
    fn constant_column_is_exact() {
        let points = vec![3.0, 7.0, 3.0, 7.0, 3.0, 7.0];
        let q = QuantStore::build(&points, 3, 2);
        for i in 0..3 {
            let d = q.sq_dist(&points[i * 2..i * 2 + 2], i);
            assert!(d < 1e-18, "node {i}: sq_dist {d}");
        }
    }

    #[test]
    fn out_of_range_node_is_infinite() {
        let q = QuantStore::build(&[1.0, 2.0], 1, 2);
        assert_eq!(q.sq_dist(&[1.0, 2.0], 5), f64::INFINITY);
    }

    #[test]
    fn encode_is_deterministic() {
        let points = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let a = QuantStore::build(&points, 3, 2);
        let b = QuantStore::build(&points, 3, 2);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.encode_into(&mut ba);
        b.encode_into(&mut bb);
        assert_eq!(ba, bb);
        assert_eq!(ba.len(), 2 * 16 + 6);
    }
}
