//! Shared fixtures for the cross-crate integration tests (the tests live
//! in `tests/tests/`).
//!
//! Dataset generation is the slow part of every integration test, so the
//! standard fixtures are built once per process and shared.

#![deny(missing_docs)]

use kinemyo::biosim::{Dataset, DatasetSpec, Limb};
use std::sync::OnceLock;

/// A small-but-meaningful hand test bed: 2 participants × 4 trials of each
/// of the 6 classes (48 records), built once.
pub fn hand_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        Dataset::generate(DatasetSpec::hand_default().with_size(2, 4))
            .expect("hand dataset generates")
    })
}

/// A small-but-meaningful leg test bed (48 records), built once.
pub fn leg_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        Dataset::generate(DatasetSpec::leg_default().with_size(2, 4))
            .expect("leg dataset generates")
    })
}

/// A small whole-body test bed (all 12 classes), built once.
pub fn whole_body_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        Dataset::generate(DatasetSpec::whole_body_default().with_size(1, 3))
            .expect("whole-body dataset generates")
    })
}

/// Dataset for a given limb.
pub fn dataset_for(limb: Limb) -> &'static Dataset {
    match limb {
        Limb::RightHand => hand_dataset(),
        Limb::RightLeg => leg_dataset(),
        Limb::WholeBody => whole_body_dataset(),
    }
}
