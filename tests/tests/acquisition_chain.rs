//! Integration tests for the acquisition substrate feeding the pipeline:
//! stream alignment, conditioning-chain behaviour on realistic signals,
//! and dataset persistence through the full record structure.

use kinemyo::biosim::{Dataset, DatasetSpec, Limb, MotionClass};
use kinemyo_biosim::acquisition::{process_emg_channel, AcquisitionConfig};
use kinemyo_dsp::fft::median_frequency;
use kinemyo_integration_tests::hand_dataset;

#[test]
fn records_are_frame_aligned_across_modalities() {
    let ds = hand_dataset();
    for r in &ds.records {
        assert_eq!(r.mocap.rows(), r.emg.rows(), "record {}", r.id);
        assert_eq!(r.pelvis.len(), r.mocap.rows());
        // Durations land near the class's nominal trial length.
        let dur = r.frames() as f64 / 120.0;
        assert!(
            (3.0..=14.0).contains(&dur),
            "record {} duration {dur}",
            r.id
        );
    }
}

#[test]
fn emg_envelopes_are_physiological() {
    let ds = hand_dataset();
    for r in &ds.records {
        for ch in 0..r.emg.cols() {
            let col: Vec<f64> = (0..r.frames()).map(|f| r.emg[(f, ch)]).collect();
            let peak = col.iter().cloned().fold(0.0, f64::max);
            // Rectified envelope of a ~1 mV MVC signal.
            assert!(peak < 5e-3, "record {} ch {ch} peak {peak}", r.id);
            // Mostly non-negative (anti-alias ringing may dip slightly).
            let strongly_negative = col.iter().filter(|&&v| v < -1e-4).count();
            assert!(strongly_negative < col.len() / 50);
        }
    }
}

#[test]
fn active_muscles_match_motion_semantics() {
    let ds = hand_dataset();
    // Mean biceps envelope during drink-cup (sustained flexion) must beat
    // the biceps envelope during punch (extension-dominated).
    let mean_ch = |class: MotionClass, ch: usize| -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for r in ds.records.iter().filter(|r| r.class == class) {
            for f in 0..r.frames() {
                acc += r.emg[(f, ch)];
            }
            n += r.frames();
        }
        acc / n as f64
    };
    let biceps_drink = mean_ch(MotionClass::DrinkCup, 0);
    let triceps_drink = mean_ch(MotionClass::DrinkCup, 1);
    let triceps_punch = mean_ch(MotionClass::Punch, 1);
    assert!(
        biceps_drink > triceps_drink,
        "drinking is flexor-dominated: biceps {biceps_drink} vs triceps {triceps_drink}"
    );
    assert!(
        triceps_punch > triceps_drink,
        "punching needs more triceps than drinking: {triceps_punch} vs {triceps_drink}"
    );
}

#[test]
fn conditioning_chain_is_rate_correct_on_synthetic_emg() {
    // A synthetic 1 kHz burst through the real conditioning chain arrives
    // at 120 Hz with the envelope in the right place.
    let fs = 1000.0;
    let raw: Vec<f64> = (0..5000)
        .map(|i| {
            let t = i as f64 / fs;
            let active = (1.0..3.0).contains(&t);
            if active {
                (2.0 * std::f64::consts::PI * 130.0 * t).sin() * 1e-3
            } else {
                0.0
            }
        })
        .collect();
    let out = process_emg_channel(&raw, &AcquisitionConfig::default()).unwrap();
    assert_eq!(out.len(), 600); // 5 s at 120 Hz
    let active_mean: f64 = out[150..330].iter().sum::<f64>() / 180.0;
    let rest_mean: f64 = out[450..590].iter().sum::<f64>() / 140.0;
    assert!(active_mean > 20.0 * rest_mean.max(1e-12));
}

#[test]
fn synthetic_raw_emg_occupies_surface_emg_band() {
    // Regenerate one raw channel and check its median frequency sits in
    // the canonical 60–250 Hz surface-EMG range.
    use kinemyo_biosim::emg::{synthesize_channel, EmgSynthConfig};
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let act = vec![1.0; 600];
    let raw = synthesize_channel(&act, 120.0, 5.0, &EmgSynthConfig::realistic(), &mut rng).unwrap();
    let mf = median_frequency(&raw, 1000.0).unwrap();
    assert!((50.0..280.0).contains(&mf), "median frequency {mf}");
}

#[test]
fn dataset_persistence_roundtrip_preserves_classification() {
    use kinemyo::{MotionClassifier, PipelineConfig};
    let spec = DatasetSpec::hand_default().with_size(1, 2);
    let ds = Dataset::generate(spec).unwrap();
    let path = std::env::temp_dir().join("kinemyo_integration_roundtrip.json");
    ds.save_json(&path).unwrap();
    let reloaded = Dataset::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let refs: Vec<_> = ds.records.iter().collect();
    let refs2: Vec<_> = reloaded.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(6);
    let m1 = MotionClassifier::train(&refs, Limb::RightHand, &config).unwrap();
    let m2 = MotionClassifier::train(&refs2, Limb::RightHand, &config).unwrap();
    for (a, b) in m1.db().entries().iter().zip(m2.db().entries()) {
        assert_eq!(
            a.vector, b.vector,
            "training must be identical after JSON roundtrip"
        );
    }
}

#[cfg(test)]
mod rand_chacha_reexport_check {
    // The integration crate intentionally exercises the same RNG the
    // substrate uses, pinned by the workspace lockfile.
    #[test]
    fn chacha_is_available() {
        use rand::SeedableRng as _;
        let _ = rand_chacha::ChaCha8Rng::seed_from_u64(0);
    }
}
