//! End-to-end cluster behaviour: WAL-shipped replication must produce
//! bit-identical replicas, a torn or corrupted replication stream must
//! never apply a partial entry, leader death must promote the most
//! caught-up follower without an external coordinator, and the
//! scatter-gather router must degrade honestly — naming dead shards —
//! instead of failing or silently narrowing its answers.
//!
//! The replication wire format is binary (the store's KWAL frames), so
//! replication and failover tests run even under the offline stub
//! build; only the tests that speak the JSON serve protocol are guarded
//! by `json_available()` (see `.claude/skills/verify`).

use kinemyo::biosim::{MotionClass, MotionRecord};
use kinemyo::pipeline::RecordMeta;
use kinemyo::{stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_cluster::{
    encode_msg, ClusterNode, FaultProxy, LinkFaultSpec, MsgBuf, NodeConfig, ReplMsg, Router,
    RouterConfig, RouterServer,
};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_serve::{BatchItem, Request, Response, Role, ServeClient, ServeConfig, Server};
use kinemyo_store::record::encode_entry;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// True when the real serde_json backend is linked in.
fn json_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

/// Small trained model + held-out queries from the shared hand fixture.
/// Training is fully deterministic, so every call yields an identical
/// model — the cluster's "same model on every node" invariant.
fn trained_model() -> (MotionClassifier, Vec<MotionRecord>) {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(8);
    let model = MotionClassifier::train(&train, ds.spec.limb, &config).expect("training succeeds");
    let queries = queries.into_iter().cloned().collect();
    (model, queries)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kinemyo_cluster_{name}_{}", std::process::id()))
}

/// A store-backed serve daemon ready to join a cluster.
fn node_server(name: &str) -> (Arc<Server>, PathBuf) {
    let (model, _) = trained_model();
    let dir = tmp_path(name);
    std::fs::remove_dir_all(&dir).ok();
    let config = ServeConfig::default().with_store_dir(&dir);
    let server = Arc::new(Server::start(model, config).expect("server starts"));
    (server, dir)
}

/// Test-speed replication timing.
fn fast(node_id: u64) -> NodeConfig {
    NodeConfig::new(node_id, "127.0.0.1:0")
        .with_heartbeat(Duration::from_millis(40))
        .with_election_timeout(Duration::from_millis(250))
}

fn meta(i: usize) -> RecordMeta {
    RecordMeta {
        record_id: i,
        class: MotionClass::RaiseArm,
        participant: 0,
        trial: i,
    }
}

/// A deterministic, finite, non-trivial vector with per-entry bit
/// patterns (so bit-identity checks mean something).
fn vector(i: usize, dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|d| (i * 31 + d) as f64 * 0.125 + 0.015_625)
        .collect()
}

/// Reserves a free loopback port by binding and immediately releasing
/// it. The tiny reuse race is acceptable in tests.
fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// Drains every strong reference and blocks until the daemon exits.
fn finish(server: Arc<Server>) {
    server.shutdown();
    let mut server = server;
    let server = loop {
        match Arc::try_unwrap(server) {
            Ok(inner) => break inner,
            Err(still_shared) => {
                server = still_shared;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    server.wait();
}

#[test]
fn followers_replicate_history_and_live_inserts_bit_identically() {
    let (server_a, dir_a) = node_server("repl_leader");
    let store_a = server_a.store().expect("leader has a store");
    let dim = store_a.dim();

    // History committed BEFORE replication starts: the catch-up path.
    for i in 0..3usize {
        store_a
            .insert(1000 + i, meta(i), vector(i, dim))
            .expect("leader insert");
    }
    let mut node_a =
        ClusterNode::start(Arc::clone(&server_a), fast(1)).expect("leader node starts");
    assert_eq!(node_a.role(), Role::Leader);
    assert_eq!(node_a.applied_seq(), 3);

    let (server_b, dir_b) = node_server("repl_follower");
    let mut node_b = ClusterNode::start(
        Arc::clone(&server_b),
        fast(2)
            .with_leader(node_a.repl_addr())
            .with_peers(vec![node_a.repl_addr().to_string()]),
    )
    .expect("follower node starts");
    assert!(
        node_b.wait_for_seq(3, Duration::from_secs(10)),
        "follower must catch up on pre-existing history, applied {}",
        node_b.applied_seq()
    );

    // Live inserts stream incrementally.
    for i in 3..6usize {
        store_a
            .insert(1000 + i, meta(i), vector(i, dim))
            .expect("leader insert");
    }
    assert!(
        node_b.wait_for_seq(6, Duration::from_secs(10)),
        "follower must apply live inserts, applied {}",
        node_b.applied_seq()
    );
    assert_eq!(node_b.role(), Role::Follower);

    // The replica is bit-identical: same sequence numbers, same encoded
    // WAL payloads (f64 bit patterns included).
    let store_b = server_b.store().expect("follower has a store");
    assert_eq!(
        store_a.encoded_entries_from(0),
        store_b.encoded_entries_from(0),
        "replicated store must match the leader byte for byte"
    );

    node_b.stop();
    drop(node_b);
    finish(server_b);
    node_a.stop();
    drop(node_a);
    finish(server_a);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn torn_replication_tail_at_every_byte_offset_never_yields_a_partial_entry() {
    // A realistic received stream: Welcome followed by three Entry
    // frames carrying real encoded WAL payloads.
    let dim = 16usize;
    let entries: Vec<(u64, Vec<u8>)> = (0..3usize)
        .map(|i| {
            (
                (i + 1) as u64,
                encode_entry(1000 + i, &meta(i), &vector(i, dim)),
            )
        })
        .collect();
    let mut frames = vec![encode_msg(&ReplMsg::Welcome {
        epoch: 1,
        dim: dim as u32,
        commit_seq: entries.len() as u64,
        serve_addr: "127.0.0.1:7001".into(),
    })];
    for (seq, payload) in &entries {
        frames.push(encode_msg(&ReplMsg::Entry {
            seq: *seq,
            payload: payload.clone(),
        }));
    }
    let stream: Vec<u8> = frames.concat();
    // Cumulative end offset of each frame.
    let boundaries: Vec<usize> = frames
        .iter()
        .scan(0usize, |acc, f| {
            *acc += f.len();
            Some(*acc)
        })
        .collect();

    for cut in 0..=stream.len() {
        let mut buf = MsgBuf::new();
        buf.extend(&stream[..cut]);
        let mut welcome_seen = 0usize;
        let mut got: Vec<(u64, Vec<u8>)> = Vec::new();
        loop {
            match buf.next_msg() {
                Ok(Some(ReplMsg::Welcome { .. })) => welcome_seen += 1,
                Ok(Some(ReplMsg::Entry { seq, payload })) => got.push((seq, payload)),
                Ok(Some(other)) => panic!("cut {cut}: unexpected message {other:?}"),
                Ok(None) => break,
                // A truncated tail must read as incomplete — never as
                // corruption, desync, or a protocol error.
                Err(e) => panic!("cut {cut}: torn tail must never error, got {e}"),
            }
        }
        let complete = boundaries.iter().filter(|b| **b <= cut).count();
        assert_eq!(
            welcome_seen,
            usize::from(complete >= 1),
            "cut {cut}: welcome visibility"
        );
        let expect_entries = complete.saturating_sub(1);
        assert_eq!(
            got.len(),
            expect_entries,
            "cut {cut}: exactly the complete frames must parse"
        );
        // Whatever parsed must be bit-identical to what was sent — a
        // partial or spliced payload would betray itself here.
        assert_eq!(got.as_slice(), &entries[..expect_entries], "cut {cut}");
    }
}

#[test]
fn torn_stream_mid_entry_applies_only_complete_frames_then_converges() {
    let (server_a, dir_a) = node_server("torn_leader");
    let store_a = server_a.store().expect("leader has a store");
    let dim = store_a.dim();
    for i in 0..4usize {
        store_a
            .insert(1000 + i, meta(i), vector(i, dim))
            .expect("leader insert");
    }
    let mut node_a =
        ClusterNode::start(Arc::clone(&server_a), fast(1)).expect("leader node starts");

    // Compute where the third Entry frame lives in the byte stream the
    // leader will send, and sever the link in the middle of it.
    let welcome_len = encode_msg(&ReplMsg::Welcome {
        epoch: 1,
        dim: dim as u32,
        commit_seq: 4,
        serve_addr: server_a.local_addr().to_string(),
    })
    .len() as u64;
    let entry_len = encode_msg(&ReplMsg::Entry {
        seq: 1,
        payload: store_a.encoded_entries_from(0)[0].1.clone(),
    })
    .len() as u64;
    let cut = welcome_len + 2 * entry_len + entry_len / 2;
    let proxy = FaultProxy::start(
        node_a.repl_addr(),
        LinkFaultSpec {
            cut_after_bytes: Some(cut),
            ..LinkFaultSpec::clean()
        },
    )
    .expect("proxy starts");

    let (server_b, dir_b) = node_server("torn_follower");
    let mut node_b = ClusterNode::start(
        Arc::clone(&server_b),
        fast(2)
            .with_leader(proxy.addr())
            .with_peers(vec![proxy.addr().to_string()]),
    )
    .expect("follower node starts");

    // Despite the first stream dying mid-frame, the follower converges:
    // complete frames applied, the torn one re-fetched after reconnect.
    assert!(
        node_b.wait_for_seq(4, Duration::from_secs(10)),
        "follower must converge after the torn stream, applied {}",
        node_b.applied_seq()
    );
    let store_b = server_b.store().expect("follower has a store");
    assert_eq!(
        store_a.encoded_entries_from(0),
        store_b.encoded_entries_from(0),
        "state after a torn stream must still be bit-identical"
    );

    node_b.stop();
    drop(node_b);
    finish(server_b);
    node_a.stop();
    drop(node_a);
    finish(server_a);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn corrupted_frame_in_flight_is_skipped_and_rerequested() {
    let (server_a, dir_a) = node_server("corrupt_leader");
    let store_a = server_a.store().expect("leader has a store");
    let dim = store_a.dim();
    for i in 0..4usize {
        store_a
            .insert(1000 + i, meta(i), vector(i, dim))
            .expect("leader insert");
    }
    let mut node_a =
        ClusterNode::start(Arc::clone(&server_a), fast(1)).expect("leader node starts");

    // Flip one byte inside the second Entry frame's body: the CRC fails
    // but framing survives, so the follower can re-request in-stream.
    let welcome_len = encode_msg(&ReplMsg::Welcome {
        epoch: 1,
        dim: dim as u32,
        commit_seq: 4,
        serve_addr: server_a.local_addr().to_string(),
    })
    .len() as u64;
    let entry_len = encode_msg(&ReplMsg::Entry {
        seq: 1,
        payload: store_a.encoded_entries_from(0)[0].1.clone(),
    })
    .len() as u64;
    let corrupt_at = welcome_len + entry_len + 8 + 20; // past the frame header
    let proxy = FaultProxy::start(
        node_a.repl_addr(),
        LinkFaultSpec {
            corrupt_byte: Some(corrupt_at),
            ..LinkFaultSpec::clean()
        },
    )
    .expect("proxy starts");

    let (server_b, dir_b) = node_server("corrupt_follower");
    let mut node_b = ClusterNode::start(
        Arc::clone(&server_b),
        fast(2)
            .with_leader(proxy.addr())
            .with_peers(vec![proxy.addr().to_string()]),
    )
    .expect("follower node starts");

    assert!(
        node_b.wait_for_seq(4, Duration::from_secs(10)),
        "follower must converge past the corrupted frame, applied {}",
        node_b.applied_seq()
    );
    let store_b = server_b.store().expect("follower has a store");
    assert_eq!(
        store_a.encoded_entries_from(0),
        store_b.encoded_entries_from(0),
        "a corrupted frame must be re-fetched, never applied"
    );

    node_b.stop();
    drop(node_b);
    finish(server_b);
    node_a.stop();
    drop(node_a);
    finish(server_a);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn leader_death_promotes_the_most_caught_up_follower_with_identical_state() {
    let (server_a, dir_a) = node_server("failover_leader");
    let store_a = server_a.store().expect("leader has a store");
    let dim = store_a.dim();
    let mut node_a =
        ClusterNode::start(Arc::clone(&server_a), fast(1)).expect("leader node starts");

    let (server_b, dir_b) = node_server("failover_b");
    let (server_c, dir_c) = node_server("failover_c");
    let leader_addr = node_a.repl_addr().to_string();
    // Each follower's peer list must name the other, so the replication
    // ports cannot both be ephemeral: reserve two free ports up front
    // and hand them out explicitly.
    let addr_b = reserve_addr();
    let addr_c = reserve_addr();
    let mut node_b = ClusterNode::start(
        Arc::clone(&server_b),
        NodeConfig::new(2, &addr_b)
            .with_heartbeat(Duration::from_millis(40))
            .with_election_timeout(Duration::from_millis(250))
            .with_leader(&leader_addr)
            .with_peers(vec![leader_addr.clone(), addr_c.clone()]),
    )
    .expect("follower b starts");
    let mut node_c = ClusterNode::start(
        Arc::clone(&server_c),
        NodeConfig::new(3, &addr_c)
            .with_heartbeat(Duration::from_millis(40))
            .with_election_timeout(Duration::from_millis(250))
            .with_leader(&leader_addr)
            .with_peers(vec![leader_addr.clone(), addr_b.clone()]),
    )
    .expect("follower c starts");

    for i in 0..4usize {
        store_a
            .insert(1000 + i, meta(i), vector(i, dim))
            .expect("leader insert");
    }
    assert!(node_b.wait_for_seq(4, Duration::from_secs(10)));
    assert!(node_c.wait_for_seq(4, Duration::from_secs(10)));
    let expected = store_a.encoded_entries_from(0);

    // Kill the leader: replication listener gone, streams severed.
    node_a.stop();
    drop(node_a);
    finish(server_a);

    // Both followers are equally caught up, so the tie breaks to the
    // lower node id: node 2 must win the election.
    assert!(
        node_b.wait_for_role(Role::Leader, Duration::from_secs(10)),
        "most caught-up follower must promote itself, role {:?}",
        node_b.role()
    );
    assert!(node_b.epoch() >= 2, "promotion must advance the epoch");
    assert_eq!(server_b.role(), Role::Leader);

    // The promoted replica holds the dead leader's exact bytes.
    let store_b = server_b.store().expect("b has a store");
    assert_eq!(
        store_b.encoded_entries_from(0),
        expected,
        "promoted follower must serve the dead leader's exact state"
    );

    // The surviving follower re-points at the new leader and keeps
    // replicating: a post-failover insert reaches it bit-identically.
    store_b
        .insert(2000, meta(99), vector(99, dim))
        .expect("new leader insert");
    assert!(
        node_c.wait_for_seq(5, Duration::from_secs(10)),
        "survivor must follow the promoted leader, applied {}",
        node_c.applied_seq()
    );
    assert_eq!(node_c.role(), Role::Follower);
    let store_c = server_c.store().expect("c has a store");
    assert_eq!(
        store_b.encoded_entries_from(0),
        store_c.encoded_entries_from(0),
        "post-failover replication must stay bit-identical"
    );

    node_c.stop();
    drop(node_c);
    finish(server_c);
    node_b.stop();
    drop(node_b);
    finish(server_b);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}

#[test]
fn followers_refuse_writes_with_a_typed_not_leader_pointing_home() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (server_a, dir_a) = node_server("notleader_leader");
    let store_a = server_a.store().expect("leader has a store");
    let dim = store_a.dim();
    let mut node_a =
        ClusterNode::start(Arc::clone(&server_a), fast(1)).expect("leader node starts");
    let (server_b, dir_b) = node_server("notleader_follower");
    let mut node_b = ClusterNode::start(
        Arc::clone(&server_b),
        fast(2).with_leader(node_a.repl_addr()),
    )
    .expect("follower node starts");
    store_a
        .insert(1000, meta(0), vector(0, dim))
        .expect("leader insert");
    // Applying seq 1 guarantees the Welcome (with the leader hint) has
    // been processed.
    assert!(node_b.wait_for_seq(1, Duration::from_secs(10)));

    let (_, queries) = trained_model();
    let mut client = ServeClient::connect(server_b.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.insert(&queries[0]).expect("insert call") {
        Response::NotLeader { leader_hint } => {
            assert_eq!(
                leader_hint.as_deref(),
                Some(server_a.local_addr().to_string().as_str()),
                "the refusal must point writers at the leader's serve address"
            );
        }
        other => panic!("follower must refuse writes with not_leader, got {other:?}"),
    }
    // Reads still work on the follower.
    client.classify(&queries[0]).expect("follower serves reads");

    node_b.stop();
    drop(node_b);
    finish(server_b);
    node_a.stop();
    drop(node_a);
    finish(server_a);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Two shard servers over disjoint halves of the same trained database.
fn shard_servers() -> (Server, Server, MotionClassifier, Vec<MotionRecord>) {
    let (reference, queries) = trained_model();
    let (shard_even, _) = trained_model();
    let (shard_odd, _) = trained_model();
    shard_even.shared_db().retain(|id, _| id % 2 == 0);
    shard_odd.shared_db().retain(|id, _| id % 2 == 1);
    let server_even = Server::start(shard_even, ServeConfig::default()).unwrap();
    let server_odd = Server::start(shard_odd, ServeConfig::default()).unwrap();
    (server_even, server_odd, reference, queries)
}

fn fast_router(shards: Vec<Vec<String>>) -> RouterConfig {
    RouterConfig::default()
        .with_shards(shards)
        .with_shard_deadline(Duration::from_millis(2000))
        .with_retry(
            kinemyo_serve::RetryPolicy::default()
                .with_base(Duration::from_millis(5))
                .with_cap(Duration::from_millis(20))
                .with_max_attempts(2),
        )
}

#[test]
fn scatter_gather_merge_is_exact_when_every_shard_answers() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (server_even, server_odd, reference, queries) = shard_servers();
    let router = Router::new(fast_router(vec![
        vec![server_even.local_addr().to_string()],
        vec![server_odd.local_addr().to_string()],
    ]))
    .unwrap();

    for q in queries.iter().take(4) {
        let offline = reference.classify_record(q).expect("offline classify");
        let (merged, health) = router.classify(q);
        assert!(health.is_complete(), "both shards must answer: {health}");
        assert_eq!(health.shards_answered, 2);
        let merged = merged.expect("complete scatter must classify");
        // Exactness: the merged answer equals the single whole-database
        // node byte for byte (neighbours, distances, feature vector).
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&offline).unwrap(),
            "sharded answer must be bit-identical to the unsharded one"
        );
    }

    server_even.shutdown();
    server_odd.shutdown();
    server_even.wait();
    server_odd.wait();
}

#[test]
fn killing_a_shard_degrades_batches_to_typed_partial_answers() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (server_even, server_odd, _reference, queries) = shard_servers();
    let odd_addr = server_odd.local_addr().to_string();
    let router = Router::new(fast_router(vec![
        vec![server_even.local_addr().to_string()],
        vec![odd_addr.clone()],
    ]))
    .unwrap();

    // Healthy first: the batch merges from both shards.
    let batch: Vec<MotionRecord> = queries.iter().take(3).cloned().collect();
    let (items, health) = router.classify_batch(&batch);
    assert!(health.is_complete());
    assert!(items.iter().all(|i| matches!(i, BatchItem::Ok { .. })));

    // Kill the odd shard, then batch again: answers keep flowing from
    // the survivor and the response names the dead shard.
    server_odd.shutdown();
    server_odd.wait();
    let (items, health) = router.classify_batch(&batch);
    assert_eq!(items.len(), batch.len());
    assert!(
        items.iter().all(|i| matches!(i, BatchItem::Ok { .. })),
        "surviving shard must still answer every item"
    );
    assert!(!health.is_complete(), "health must admit the loss");
    assert_eq!(health.shards_answered, 1);
    assert_eq!(health.missing(), vec![1], "shard 1 must be named missing");
    let dead = &health.shards[1];
    assert_eq!(dead.replica, odd_addr);
    assert!(
        matches!(
            dead.status,
            kinemyo::cluster::ShardStatus::Dead { .. }
                | kinemyo::cluster::ShardStatus::Refused { .. }
        ),
        "dead shard must carry a typed status, got {:?}",
        dead.status
    );
    assert!(dead.attempts >= 1, "retries must be accounted");

    server_even.shutdown();
    server_even.wait();
}

#[test]
fn router_server_speaks_the_serve_protocol_with_cluster_health() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (server_even, server_odd, reference, queries) = shard_servers();
    let router = Router::new(fast_router(vec![
        vec![server_even.local_addr().to_string()],
        vec![server_odd.local_addr().to_string()],
    ]))
    .unwrap();
    let mut front = RouterServer::start(router, "127.0.0.1:0").unwrap();

    let mut client = ServeClient::connect(front.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Health reports the router role and aggregates shard motion counts.
    match client.health().expect("health") {
        Response::Health { role, motions, .. } => {
            assert_eq!(role, Role::Router);
            assert_eq!(
                motions,
                reference.db().len(),
                "shard motion counts must sum to the whole database"
            );
        }
        other => panic!("expected health, got {other:?}"),
    }

    // Classify over the wire carries the cluster section.
    match client
        .call(&Request::Classify {
            record: queries[0].clone(),
        })
        .expect("classify call")
    {
        Response::Result { result, cluster } => {
            let cluster = cluster.expect("router responses must carry cluster health");
            assert!(cluster.is_complete(), "{cluster}");
            let offline = reference.classify_record(&queries[0]).unwrap();
            assert_eq!(
                serde_json::to_string(&result).unwrap(),
                serde_json::to_string(&offline).unwrap(),
            );
        }
        other => panic!("expected result, got {other:?}"),
    }

    // Writes are refused with a typed answer, and shutdown stops the
    // front end without touching the shards.
    match client.insert(&queries[0]).expect("insert call") {
        Response::NotLeader { .. } => {}
        other => panic!("router must refuse writes, got {other:?}"),
    }
    match client.shutdown().expect("shutdown ack") {
        Response::ShuttingDown => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    front.wait();

    server_even.shutdown();
    server_odd.shutdown();
    server_even.wait();
    server_odd.wait();
}
