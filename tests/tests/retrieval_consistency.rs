//! Integration tests for retrieval-path consistency: the three index
//! structures must return identical neighbours for *real* trained motion
//! vectors (not just synthetic ones), and classification must not depend
//! on which index is used.

use kinemyo::biosim::{Limb, MotionRecord};
use kinemyo::{stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_modb::{classify, knn, IDistance, VpTree};

#[test]
fn all_indexes_agree_on_trained_vectors() {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(12);
    let model = MotionClassifier::train(&train, Limb::RightHand, &config).unwrap();
    let vp = VpTree::build(&model.db());
    let idist = IDistance::build(&model.db(), 6).unwrap();

    for q in &queries {
        let fv = model.query_feature_vector(q).unwrap();
        let exact = knn(&model.db(), fv.as_slice(), 5).unwrap();
        let via_vp = vp.knn(fv.as_slice(), 5).unwrap();
        let via_id = idist.knn(fv.as_slice(), 5).unwrap();
        assert_eq!(exact.len(), via_vp.len());
        assert_eq!(exact.len(), via_id.len());
        for i in 0..exact.len() {
            assert!(
                (exact[i].distance - via_vp[i].distance).abs() < 1e-12,
                "vp-tree distance mismatch at rank {i}"
            );
            assert!(
                (exact[i].distance - via_id[i].distance).abs() < 1e-12,
                "idistance distance mismatch at rank {i}"
            );
        }
        // Majority vote must therefore be identical too.
        let c_exact = classify(&exact, |m| m.class);
        let c_vp = classify(&via_vp, |m| m.class);
        let c_id = classify(&via_id, |m| m.class);
        assert_eq!(c_exact, c_vp);
        assert_eq!(c_exact, c_id);
    }
}

#[test]
fn self_queries_retrieve_self_first_through_any_index() {
    let ds = hand_dataset();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&refs, Limb::RightHand, &config).unwrap();
    let vp = VpTree::build(&model.db());
    let idist = IDistance::build(&model.db(), 8).unwrap();
    for r in ds.records.iter().step_by(7) {
        let fv = model.query_feature_vector(r).unwrap();
        assert_eq!(vp.knn(fv.as_slice(), 1).unwrap()[0].id, r.id);
        assert_eq!(idist.knn(fv.as_slice(), 1).unwrap()[0].id, r.id);
    }
}
