//! Seeded end-to-end sensor-fault tests across biosim, core and the guard:
//! the guard must absorb every fault class without a panic and report
//! exactly what was injected; the bare pipeline must reject corrupt
//! queries with typed errors, never a panic.

use kinemyo::biosim::{inject_faults, FaultLog, FaultSpec, MotionRecord};
use kinemyo::prelude::*;
use kinemyo_integration_tests::hand_dataset;

const FAULT_SEED: u64 = 0x2007_FA17;

/// Clean-trained guarded model plus the held-out queries.
fn guarded_model() -> (GuardedClassifier, Vec<&'static MotionRecord>) {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 2);
    let config = PipelineConfig::default().with_clusters(10).with_seed(7);
    let model = GuardedClassifier::train(&train, ds.spec.limb, &config, GuardConfig::default())
        .expect("guarded model trains");
    (model, queries)
}

#[test]
fn guard_absorbs_faults_and_reports_them_exactly() {
    let (model, queries) = guarded_model();
    let spec = FaultSpec::from_rate(0.05, FAULT_SEED);

    let mut injected = FaultLog::default();
    let mut health = SessionHealth::default();
    let mut usable = 0usize;
    let mut errors = 0usize;
    for q in &queries {
        let (fq, log) = inject_faults(q, &spec);
        injected.merge(&log);
        let mut s = model.session();
        for f in 0..fq.frames() {
            let pelvis = [fq.pelvis[f].x, fq.pelvis[f].y, fq.pelvis[f].z];
            // Value faults (NaN, flatline, saturation, drift) are absorbed
            // and counted — only structural faults (wrong arity) error.
            s.push_frame(fq.mocap.row(f), pelvis, fq.emg.row(f))
                .expect("value faults must not be push errors");
        }
        s.finish().expect("finish never fails on value faults");
        match s.classify(3).expect("classify returns typed results") {
            Some(c) => {
                assert!(
                    c.feature_vector.as_slice().iter().all(|v| v.is_finite()),
                    "record {}: NaN leaked into the feature vector",
                    q.id
                );
                usable += 1;
                errors += (c.predicted != q.class) as usize;
            }
            None => errors += 1,
        }
        health.merge(s.health());
    }

    // The health report is ground truth, not an estimate: every injected
    // fault the guard can observe is counted exactly.
    assert!(
        injected.mocap_frames_dropped > 0,
        "fault spec injected nothing"
    );
    assert!(injected.emg_nan_samples > 0);
    assert_eq!(health.mocap_frames_dropped, injected.mocap_frames_dropped);
    assert_eq!(health.emg_samples_non_finite, injected.emg_nan_samples);
    // The guard repaired short gaps rather than quarantining everything.
    assert!(health.mocap_frames_filled > 0);

    // Degradation envelope: most queries stay usable and accuracy stays
    // far from chance (1/6 classes ⇒ ~83% error when guessing).
    assert!(
        usable * 2 > queries.len(),
        "only {usable}/{} queries usable",
        queries.len()
    );
    let misclass_pct = errors as f64 / queries.len() as f64 * 100.0;
    assert!(
        misclass_pct <= 50.0,
        "guarded misclassification {misclass_pct:.1}% under 5% faults"
    );
}

#[test]
fn dead_channels_are_detected_under_heavy_dropout() {
    let (model, queries) = guarded_model();
    // Long, frequent dropout episodes: whole windows of flatlined EMG.
    let spec = FaultSpec {
        emg_dropout_rate: 0.02,
        emg_dropout_len: 60,
        ..FaultSpec::none(FAULT_SEED)
    };
    let mut flagged = 0usize;
    for q in queries.iter().take(4) {
        let (fq, log) = inject_faults(q, &spec);
        assert!(log.emg_flatline_samples > 0);
        let c = model
            .classify_record(&fq)
            .expect("dropout degrades, never aborts");
        flagged += c.health.dead_channel_windows.iter().sum::<usize>();
    }
    assert!(flagged > 0, "no dead-channel window was flagged");
}

#[test]
fn bare_pipeline_rejects_faulty_queries_with_typed_errors() {
    let (model, queries) = guarded_model();
    let spec = FaultSpec::from_rate(0.05, FAULT_SEED);
    let mut rejected = 0usize;
    for q in &queries {
        let (fq, _) = inject_faults(q, &spec);
        // The unguarded pipeline: every outcome must be a value or a typed
        // error — reaching the end of this loop proves nothing panicked.
        match model.primary().classify_record(&fq) {
            Ok(c) => assert!(c.feature_vector.as_slice().iter().all(|v| v.is_finite())),
            Err(e) => {
                rejected += 1;
                // A real error type with a readable message, not a panic.
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(
        rejected > 0,
        "5% faults include NaN samples; some query must be rejected"
    );
}

#[test]
fn fault_injection_is_deterministic_in_the_seed() {
    let ds = hand_dataset();
    let spec = FaultSpec::from_rate(0.10, FAULT_SEED);
    let r = &ds.records[0];
    let (a, log_a) = inject_faults(r, &spec);
    let (b, log_b) = inject_faults(r, &spec);
    assert_eq!(log_a, log_b);
    // Bit-exact corrupted streams (NaN-safe comparison via bit patterns).
    for f in 0..a.frames() {
        for ch in 0..a.emg.cols() {
            assert_eq!(a.emg[(f, ch)].to_bits(), b.emg[(f, ch)].to_bits());
        }
        for m in 0..a.mocap.cols() {
            assert_eq!(a.mocap[(f, m)].to_bits(), b.mocap[(f, m)].to_bits());
        }
    }
    // A different seed produces a different corruption pattern.
    let (_, log_c) = inject_faults(r, &spec.clone().with_seed(FAULT_SEED + 1));
    assert_ne!(log_a, log_c);
}
