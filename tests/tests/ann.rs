//! Integration tests for the approximate-neighbour backend: recall@10
//! against the exact linear scan over *real* trained motion vectors from
//! seeded biosim datasets, bit-identical index construction regardless
//! of the training thread policy, and end-to-end classification through
//! `IndexBackend::Ann`.

use kinemyo::biosim::{Dataset, DatasetSpec, MotionRecord};
use kinemyo::{IndexBackend, MotionClassifier, PipelineConfig, ThreadPolicy};
use kinemyo_ann::{AnnIndex, AnnParams};
use kinemyo_modb::knn;
use std::collections::BTreeSet;

/// Recall@k of the approximate result against the exact result, by id.
fn recall_at(
    exact: &[kinemyo_modb::Neighbor<kinemyo::pipeline::RecordMeta>],
    approx: &[kinemyo_modb::Neighbor<kinemyo::pipeline::RecordMeta>],
) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let truth: BTreeSet<usize> = exact.iter().map(|n| n.id).collect();
    let hit = approx.iter().filter(|n| truth.contains(&n.id)).count();
    hit as f64 / truth.len() as f64
}

#[test]
fn ann_recall_at_10_beats_095_on_seeded_biosim_datasets() {
    // Multiple dataset seeds and sizes: the recall contract has to hold
    // on the motion vectors the pipeline actually produces, not only on
    // synthetic clusters.
    for (seed, participants, trials) in [(2007u64, 2usize, 4usize), (11, 2, 6), (23, 3, 6)] {
        let spec = DatasetSpec::hand_default()
            .with_size(participants, trials)
            .with_seed(seed);
        let ds = Dataset::generate(spec).expect("dataset generates");
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let config = PipelineConfig::default().with_clusters(10);
        let model = MotionClassifier::train(&refs, ds.spec.limb, &config).expect("trains");
        let db = model.db();
        let index = AnnIndex::build(&db, AnnParams::default());

        let mut total = 0.0;
        let mut queries = 0usize;
        for r in &ds.records {
            let fv = model.query_feature_vector(r).expect("features");
            let exact = knn(&db, fv.as_slice(), 10).expect("linear");
            let approx = index.knn(&db, fv.as_slice(), 10).expect("ann");
            // Reported distances are exact f64 distances, bit-identical
            // to the linear scan's, for every neighbour both returned.
            for a in &approx {
                if let Some(e) = exact.iter().find(|e| e.id == a.id) {
                    assert_eq!(
                        e.distance.to_bits(),
                        a.distance.to_bits(),
                        "seed {seed}: ann reported a non-exact distance for id {}",
                        a.id
                    );
                }
            }
            total += recall_at(&exact, &approx);
            queries += 1;
        }
        let recall = total / queries as f64;
        assert!(
            recall >= 0.95,
            "seed {seed} ({} motions): recall@10 {recall:.4} < 0.95",
            db.len()
        );
    }
}

#[test]
fn ann_build_is_bit_identical_for_any_thread_policy() {
    // The graph is built from the trained database; training itself is
    // bitwise thread-count-independent, and the sequential ANN insertion
    // never consults a thread pool — so the encoded index must be
    // byte-equal whatever policy trained the model, and across rebuilds.
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(2, 4)).expect("generates");
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let base = PipelineConfig::default()
        .with_clusters(12)
        .with_index_backend(IndexBackend::Ann);

    let mut encodings: Vec<Vec<u8>> = Vec::new();
    for policy in [
        ThreadPolicy::Sequential,
        ThreadPolicy::Fixed(2),
        ThreadPolicy::Fixed(4),
        ThreadPolicy::Auto,
    ] {
        let config = base.clone().with_threads(policy);
        let model = MotionClassifier::train(&refs, ds.spec.limb, &config).expect("trains");
        let index = AnnIndex::build(&model.db(), AnnParams::default().with_seed(config.seed));
        encodings.push(index.encode());
        // And a second build from the same database is identical too.
        let again = AnnIndex::build(&model.db(), AnnParams::default().with_seed(config.seed));
        assert_eq!(
            index.encode(),
            again.encode(),
            "{policy:?}: rebuild drifted"
        );
    }
    for pair in encodings.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "ANN index bytes differ between training thread policies"
        );
    }
}

#[test]
fn ann_backend_classifies_like_linear_end_to_end() {
    // At integration-test scale the ef-search beam covers the whole
    // database, so the ANN backend must agree with the linear backend
    // exactly — same predictions, same neighbour distances.
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(2, 4)).expect("generates");
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let linear_cfg = PipelineConfig::default()
        .with_clusters(10)
        .with_index_backend(IndexBackend::Linear);
    let ann_cfg = linear_cfg.clone().with_index_backend(IndexBackend::Ann);
    let linear = MotionClassifier::train(&refs, ds.spec.limb, &linear_cfg).expect("trains");
    let ann = MotionClassifier::train(&refs, ds.spec.limb, &ann_cfg).expect("trains");
    assert_eq!(linear.index_kind(), IndexBackend::Linear);
    assert_eq!(ann.index_kind(), IndexBackend::Ann);

    for r in ds.records.iter().step_by(5) {
        let cl = linear.classify_record(r).expect("linear classify");
        let ca = ann.classify_record(r).expect("ann classify");
        assert_eq!(cl.predicted, ca.predicted, "record {}", r.id);
        assert_eq!(cl.neighbors.len(), ca.neighbors.len());
        for (a, b) in cl.neighbors.iter().zip(&ca.neighbors) {
            assert_eq!(a.id, b.id, "record {}: neighbour sets differ", r.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }
}

#[test]
fn ann_index_sees_appended_motions_immediately() {
    // HybridIndex's append contract, mirrored: entries inserted after the
    // graph was built are served from the exact linear tail until the
    // rebuild threshold folds them in.
    let ds = Dataset::generate(DatasetSpec::hand_default().with_size(2, 4)).expect("generates");
    let (train, held_out) = kinemyo::stratified_split(&ds.records, 1);
    let config = PipelineConfig::default()
        .with_clusters(10)
        .with_index_backend(IndexBackend::Ann)
        .with_index_rebuild_appends(4);
    let model = MotionClassifier::train(&train, ds.spec.limb, &config).expect("trains");

    for r in &held_out {
        let fv = model.query_feature_vector(r).expect("features");
        // Clone before inserting: a `db()` read guard alive inside the
        // insert statement would deadlock against its write lock.
        let (before, id) = {
            let db = model.db();
            (db.len(), db.max_id().map_or(0, |m| m + 1))
        };
        model
            .shared_db()
            .insert(
                id,
                kinemyo::pipeline::RecordMeta {
                    record_id: r.id,
                    class: r.class,
                    participant: r.participant,
                    trial: r.trial,
                },
                fv.as_slice().to_vec(),
            )
            .expect("insert");
        assert_eq!(model.db().len(), before + 1);
        // A self-query must retrieve the fresh motion at rank 1 even
        // though the graph prefix has not been rebuilt around it.
        let c = model.classify_record(r).expect("classify");
        assert_eq!(
            c.neighbors[0].id, id,
            "appended motion invisible to the ANN-backed neighbors() path"
        );
    }
}
