//! End-to-end tests for the `kinemyo-serve` daemon over real loopback
//! sockets: served results must be bit-identical to offline
//! classification, overload must shed with typed responses, reload must
//! never lose an in-flight request, shutdown must drain, and the server
//! stats must reconcile with a client-side tally.
//!
//! Every test speaks the actual wire protocol (JSON over TCP), so they
//! are skipped under the offline stub build where `serde_json` cannot
//! move data at runtime (see `.claude/skills/verify`).

use kinemyo::biosim::MotionRecord;
use kinemyo::{stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_serve::{BatchItem, CallOutcome, Response, ServeClient, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// True when the real serde_json backend is linked in.
fn json_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

/// Small trained model + held-out queries from the shared hand fixture.
fn trained_model() -> (MotionClassifier, Vec<MotionRecord>) {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(8);
    let model = MotionClassifier::train(&train, ds.spec.limb, &config).expect("training succeeds");
    let queries = queries.into_iter().cloned().collect();
    (model, queries)
}

fn tmp_model_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "kinemyo_serving_{name}_{}.json",
        std::process::id()
    ))
}

#[test]
fn served_results_are_bit_identical_to_offline() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    // Offline ground truth first; the model then moves into the server.
    let offline: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(&model.classify_record(q).unwrap()).unwrap())
        .collect();

    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Single-classify path.
    let served = client.classify(&queries[0]).expect("classify succeeds");
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        offline[0],
        "served single classification differs from offline"
    );

    // Batch path: every item, in order, byte-for-byte.
    let items = client.classify_batch(&queries).expect("batch succeeds");
    assert_eq!(items.len(), queries.len());
    for (i, item) in items.iter().enumerate() {
        match item {
            BatchItem::Ok { result } => assert_eq!(
                serde_json::to_string(result).unwrap(),
                offline[i],
                "served item {i} differs from offline"
            ),
            other => panic!("item {i} was not served: {other:?}"),
        }
    }
}

#[test]
fn overload_sheds_with_typed_responses_and_counts_them() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    // Tiny queue + slow single worker: a burst must overflow admission.
    let config = ServeConfig::default()
        .with_queue_capacity(2)
        .with_batch_max(1)
        .with_workers(1)
        .with_worker_delay(Duration::from_millis(300));
    let server = Server::start(model, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    let burst: Vec<MotionRecord> = (0..32)
        .map(|i| queries[i % queries.len()].clone())
        .collect();
    let items = client.classify_batch(&burst).expect("batch answers");
    assert_eq!(items.len(), burst.len());
    let ok = items
        .iter()
        .filter(|i| matches!(i, BatchItem::Ok { .. }))
        .count();
    let shed = items
        .iter()
        .filter(|i| matches!(i, BatchItem::Overloaded))
        .count();
    let expired = items
        .iter()
        .filter(|i| matches!(i, BatchItem::DeadlineExceeded { .. }))
        .count();
    assert_eq!(ok + shed + expired, burst.len(), "no item may be lost");
    assert!(ok > 0, "some items must be admitted and served");
    assert!(
        shed > 0,
        "a full queue must shed, got {ok} ok / {shed} shed"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stats.served, ok as u64);
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.deadline_expired, expired as u64);
}

#[test]
fn concurrent_clients_survive_hot_reload_without_losing_responses() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let path = tmp_model_path("reload");
    model.save_json(&path).expect("model saves");

    let server = Server::start_from_file(&path, ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;
    let tallies: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut ok = 0usize;
                    let mut shed = 0usize;
                    for i in 0..PER_CLIENT {
                        match client.classify(&queries[(t + i) % queries.len()]) {
                            Ok(_) => ok += 1,
                            Err(CallOutcome::Rejected(resp)) => match *resp {
                                Response::Overloaded { .. } => shed += 1,
                                other => panic!("unexpected rejection: {other:?}"),
                            },
                            Err(CallOutcome::Transport(e)) => panic!("transport failed: {e}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();

        // Hammer reloads from a separate control connection while the
        // client threads are mid-traffic.
        let mut control = ServeClient::connect(addr).expect("control connect");
        control.set_timeout(Some(Duration::from_secs(30))).unwrap();
        for _ in 0..5 {
            match control.reload().expect("reload call") {
                Response::Reloaded { .. } => {}
                other => panic!("reload failed: {other:?}"),
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    let total_ok: usize = tallies.iter().map(|(ok, _)| ok).sum();
    let total_shed: usize = tallies.iter().map(|(_, shed)| shed).sum();
    assert_eq!(
        total_ok + total_shed,
        CLIENTS * PER_CLIENT,
        "every request must get exactly one terminal answer"
    );

    // The server's books must agree with the client-side tally, and the
    // reloads must have actually swapped the model.
    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.served, total_ok as u64);
    assert_eq!(stats.shed, total_shed as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(stats.reloads, 5);
    assert_eq!(stats.model_generation, 5);

    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, _) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();

    // Raw socket: no client-side validation in the way.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writer.write_all(b"this is not json\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim_end()).unwrap();
    assert!(
        matches!(resp, Response::Error { .. }),
        "malformed frame must get a typed error, got {resp:?}"
    );

    // The same connection keeps working afterwards.
    writer.write_all(b"{\"op\":\"health\"}\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp: Response = serde_json::from_str(line.trim_end()).unwrap();
    match resp {
        Response::Health { motions, .. } => assert!(motions > 0),
        other => panic!("expected health, got {other:?}"),
    }

    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.stats().expect("stats").malformed, 1);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    // Slow worker so the batch is demonstrably still in flight when the
    // shutdown request lands.
    let config = ServeConfig::default()
        .with_batch_max(2)
        .with_workers(1)
        .with_worker_delay(Duration::from_millis(100));
    let server = Server::start(model, config).unwrap();
    let addr = server.local_addr();

    let in_flight: Vec<MotionRecord> = (0..6).map(|i| queries[i % queries.len()].clone()).collect();
    let worker = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        client.classify_batch(&in_flight).expect("batch answers")
    });

    // Give the batch time to enter the queue, then pull the plug.
    std::thread::sleep(Duration::from_millis(120));
    let mut control = ServeClient::connect(addr).expect("control connect");
    control.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let ack = control.shutdown().expect("shutdown call");
    assert!(matches!(ack, Response::ShuttingDown), "got {ack:?}");

    // Every in-flight item must still be answered with a real result.
    let items = worker.join().unwrap();
    assert_eq!(items.len(), 6);
    for (i, item) in items.iter().enumerate() {
        assert!(
            matches!(item, BatchItem::Ok { .. }),
            "in-flight item {i} was dropped by shutdown: {item:?}"
        );
    }

    // wait() joins every thread and hands back the final books.
    let stats = server.wait();
    assert_eq!(stats.served, 6);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.batches >= 3,
        "batch_max=2 ⇒ ≥3 batches, got {}",
        stats.batches
    );
}

#[test]
fn requests_after_shutdown_are_refused_with_a_typed_response() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();

    // One real request, then shutdown, then another on the SAME frame
    // batch: dispatch checks the flag per request, so the second must be
    // refused (its connection is still being read when the flag flips).
    assert!(client.classify(&queries[0]).is_ok());
    let ack = client.shutdown().expect("shutdown ack");
    assert!(matches!(ack, Response::ShuttingDown));

    // The ack closes the control connection; a classify afterwards can
    // only fail — either refused with `shutting_down` or the socket is
    // already gone. It must never hang or return a result.
    match client.classify(&queries[0]) {
        Err(CallOutcome::Rejected(resp)) => {
            assert!(matches!(*resp, Response::ShuttingDown), "got {resp:?}")
        }
        Err(CallOutcome::Transport(_)) => {}
        Ok(_) => panic!("served a request after shutdown"),
    }

    let stats = server.wait();
    assert_eq!(stats.served, 1);
}

#[test]
fn stats_reconcile_with_a_single_client_tally() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let k = 20usize;
    for i in 0..k {
        client
            .classify(&queries[i % queries.len()])
            .expect("classify succeeds");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.served, k as u64);
    assert_eq!(stats.total_answered(), k as u64);
    assert_eq!(stats.queue_depth, 0, "queue must be drained at rest");
    assert!(stats.batches >= 1 && stats.batches <= k as u64);
    assert_eq!(stats.batch_hist.iter().sum::<u64>(), stats.batches);
    assert_eq!(stats.latency_hist.iter().sum::<u64>(), k as u64);
    assert!(stats.p50_latency_us > 0);
    assert!(stats.p99_latency_us >= stats.p50_latency_us);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.model_generation, 0);
    assert!(stats.uptime_ms > 0);

    // Health agrees with the stats view of the world.
    match client.health().expect("health") {
        Response::Health {
            model_generation,
            motions,
            ..
        } => {
            assert_eq!(model_generation, 0);
            assert!(motions > 0);
        }
        other => panic!("expected health, got {other:?}"),
    }
}

#[test]
fn server_starts_accepts_and_drains_without_json() {
    // Deliberately NO json_available() guard: binding, accepting and the
    // shutdown drain cascade involve no serialization, so this exercises
    // the thread machinery even under the offline stub build.
    let (model, _) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral port must be resolved");

    // Open (and hold) a silent connection; the acceptor must pick it up.
    let _stream = TcpStream::connect(addr).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().connections == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "acceptor never registered the connection"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shutdown must unwind acceptor → connection → batcher → workers
    // even with a client still connected and silent.
    server.shutdown();
    let stats = server.wait();
    assert_eq!(stats.connections, 1, "acceptor must have seen the client");
    assert_eq!(stats.served, 0);
}

#[test]
fn config_validation_refuses_to_start_degenerate_servers() {
    // Pure validation — no JSON needed, runs under the stub build too.
    let err = ServeConfig::default().with_workers(0).validate();
    assert!(err.is_err());
    let err = ServeConfig::default().with_queue_capacity(0).validate();
    assert!(err.is_err());
}

#[test]
fn trickling_frames_are_cut_off_with_a_typed_timeout_error() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, _) = trained_model();
    // A short per-frame window so the slow-loris guard trips quickly.
    let config = ServeConfig::default().with_frame_timeout(Duration::from_millis(200));
    let server = Server::start(model, config).unwrap();

    // Start a frame and never finish it: bytes, but no newline.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"{\"op\":\"hea").unwrap();
    writer.flush().unwrap();

    // The server must answer with a typed error naming the timeout and
    // then close the connection — not hold the socket open forever.
    let mut line = String::new();
    reader.read_line(&mut line).expect("error frame arrives");
    let resp: Response = serde_json::from_str(line.trim_end()).unwrap();
    match resp {
        Response::Error { message } => assert!(
            message.contains("frame timed out"),
            "timeout must be named, got: {message}"
        ),
        other => panic!("expected a typed error, got {other:?}"),
    }
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read after error"),
        0,
        "connection must be closed after the timeout error"
    );

    // A well-behaved client on a fresh connection is unaffected, and the
    // trickled frame was counted as malformed.
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.malformed, 1,
        "slow-loris frame must count as malformed"
    );
}

#[test]
fn connect_with_retry_reports_attempts_and_recovers_when_the_peer_returns() {
    // Pure connection handling — no JSON needed.
    // A bound-then-dropped listener leaves an address nobody answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead = listener.local_addr().unwrap();
    drop(listener);
    let policy = kinemyo_serve::RetryPolicy::default()
        .with_base(Duration::from_millis(1))
        .with_cap(Duration::from_millis(4))
        .with_max_attempts(3);
    match ServeClient::connect_with_retry(dead, &policy) {
        Err(kinemyo_serve::ServeError::Unavailable { attempts, last }) => {
            assert_eq!(attempts, 3, "every configured attempt must be spent");
            assert!(!last.is_empty(), "the last failure must be reported");
        }
        other => panic!("expected unavailable after retries, got {other:?}"),
    }

    // Against a live listener the same policy connects first try.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let live = listener.local_addr().unwrap();
    ServeClient::connect_with_retry(live, &policy).expect("live peer connects");
}
