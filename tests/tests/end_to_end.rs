//! End-to-end integration tests: the full acquisition → features →
//! clustering → retrieval pipeline must hit the paper's quality band on
//! held-out queries, deterministically.

use kinemyo::biosim::Limb;
use kinemyo::{evaluate, stratified_split, MotionClassifier, PipelineConfig, StreamingSession};
use kinemyo_integration_tests::{dataset_for, hand_dataset};

#[test]
fn hand_pipeline_reaches_paper_quality_band() {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default()
        .with_window_ms(100.0)
        .with_clusters(12);
    let out = evaluate(&train, &queries, Limb::RightHand, &config).expect("evaluation runs");
    // The paper reports 10–20 % misclassification and ~80 % kNN-correct;
    // we gate loosely so seeds cannot flake the suite.
    assert!(
        out.misclassification_pct <= 30.0,
        "hand misclassification {:.1}% too high",
        out.misclassification_pct
    );
    assert!(
        out.knn_correct_pct >= 55.0,
        "hand kNN-correct {:.1}% too low",
        out.knn_correct_pct
    );
}

#[test]
fn leg_pipeline_reaches_paper_quality_band() {
    let ds = dataset_for(Limb::RightLeg);
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default()
        .with_window_ms(150.0)
        .with_clusters(12);
    let out = evaluate(&train, &queries, Limb::RightLeg, &config).expect("evaluation runs");
    assert!(
        out.misclassification_pct <= 30.0,
        "leg misclassification {:.1}% too high",
        out.misclassification_pct
    );
    assert!(
        out.knn_correct_pct >= 55.0,
        "leg kNN-correct {:.1}% too low",
        out.knn_correct_pct
    );
}

#[test]
fn evaluation_is_deterministic() {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(10);
    let a = evaluate(&train, &queries, Limb::RightHand, &config).unwrap();
    let b = evaluate(&train, &queries, Limb::RightHand, &config).unwrap();
    assert_eq!(a.misclassification_pct, b.misclassification_pct);
    assert_eq!(a.knn_correct_pct, b.knn_correct_pct);
}

#[test]
fn streaming_and_batch_agree_on_every_query() {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&train, Limb::RightHand, &config).unwrap();
    let mut session = StreamingSession::new(&model);
    for q in queries.iter().take(6) {
        session.reset();
        for f in 0..q.frames() {
            let pelvis = [q.pelvis[f].x, q.pelvis[f].y, q.pelvis[f].z];
            session
                .push_frame(q.mocap.row(f), pelvis, q.emg.row(f))
                .unwrap();
        }
        let batch = model.query_feature_vector(q).unwrap();
        let streamed = session.feature_vector();
        for (a, b) in batch.as_slice().iter().zip(streamed.as_slice()) {
            assert!((a - b).abs() < 1e-9, "batch {a} != streamed {b}");
        }
        let batch_class = model.classify_record(q).unwrap().predicted;
        let (stream_class, _) = session.classify(5).unwrap().expect("windows seen");
        assert_eq!(batch_class, stream_class);
    }
}

#[test]
fn window_size_changes_window_counts_consistently() {
    let ds = hand_dataset();
    let r = &ds.records[0];
    let (train, _) = stratified_split(&ds.records, 1);
    for (ms, expected_len) in [(50.0, 6usize), (100.0, 12), (200.0, 24)] {
        let config = PipelineConfig::default()
            .with_window_ms(ms)
            .with_clusters(8);
        let model = MotionClassifier::train(&train, Limb::RightHand, &config).unwrap();
        assert_eq!(model.window().len(), expected_len);
        let m = model.window_memberships(r).unwrap();
        assert_eq!(m.rows(), r.frames() / expected_len);
    }
}

#[test]
fn final_vectors_live_in_unit_hypercube() {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&train, Limb::RightHand, &config).unwrap();
    for e in model.db().entries() {
        for &v in &e.vector {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
    for q in &queries {
        let fv = model.query_feature_vector(q).unwrap();
        for &v in fv.as_slice() {
            assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
    }
}
