//! End-to-end durability: motions ingested through a live serve daemon
//! must survive a full daemon restart bit-identically, hot reload must
//! re-graft the store onto the fresh model, and an offline
//! [`DurableDb`] recovery must agree byte-for-byte with what the
//! daemon acknowledged.
//!
//! Like the serving tests, everything here speaks real JSON over real
//! loopback sockets, so the tests are skipped under the offline stub
//! build (see `.claude/skills/verify`).

use kinemyo::biosim::MotionRecord;
use kinemyo::pipeline::RecordMeta;
use kinemyo::{stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_serve::{Response, ServeClient, ServeConfig, Server};
use kinemyo_store::{DurableDb, StoreConfig};
use std::path::PathBuf;
use std::time::Duration;

/// True when the real serde_json backend is linked in.
fn json_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

/// Small trained model + held-out queries from the shared hand fixture.
fn trained_model() -> (MotionClassifier, Vec<MotionRecord>) {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(8);
    let model = MotionClassifier::train(&train, ds.spec.limb, &config).expect("training succeeds");
    let queries = queries.into_iter().cloned().collect();
    (model, queries)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kinemyo_durability_{name}_{}", std::process::id()))
}

fn insert_ok(client: &mut ServeClient, record: &MotionRecord) -> (usize, usize, bool) {
    match client.insert(record).expect("insert call") {
        Response::Inserted {
            id,
            motions,
            durable,
        } => (id, motions, durable),
        other => panic!("expected inserted, got {other:?}"),
    }
}

#[test]
fn daemon_ingested_motions_survive_restart_bit_identically() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let model_path = tmp_path("restart_model.json");
    let store_dir = tmp_path("restart_store");
    std::fs::remove_dir_all(&store_dir).ok();
    model.save_json(&model_path).expect("model saves");
    let baseline = model.db().len();
    // Ground truth BEFORE the daemon sees anything: the exact feature
    // vectors the ingested records must come back as.
    let expected: Vec<(&MotionRecord, Vec<f64>)> = queries
        .iter()
        .take(3)
        .map(|q| (q, model.query_feature_vector(q).unwrap().into_vec()))
        .collect();

    let config = ServeConfig::default().with_store_dir(&store_dir);
    let server = Server::start_from_file(&model_path, config.clone()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let mut ids = Vec::new();
    for (i, (q, _)) in expected.iter().enumerate() {
        let (id, motions, durable) = insert_ok(&mut client, q);
        assert!(durable, "a store-backed server must acknowledge durably");
        assert_eq!(motions, baseline + i + 1, "insert must be visible live");
        ids.push(id);
    }
    // Inserted motions are immediately queryable on the live daemon.
    let served = client.classify(&queries[0]).expect("classify succeeds");
    assert_eq!(served.predicted, queries[0].class);
    client.shutdown().expect("shutdown ack");
    server.wait();

    // Cold restart from the same model file and store directory.
    let server = Server::start_from_file(&model_path, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.health().expect("health") {
        Response::Health { motions, .. } => assert_eq!(
            motions,
            baseline + ids.len(),
            "restart must recover every ingested motion"
        ),
        other => panic!("expected health, got {other:?}"),
    }
    // Id allocation continues past the recovered entries: proves they are
    // back in the visible database, not just counted.
    let (next_id, _, _) = insert_ok(&mut client, expected[0].0);
    assert_eq!(next_id, ids.last().unwrap() + 1);
    client.shutdown().expect("shutdown ack");
    server.wait();

    // Offline recovery agrees bit-for-bit with the pre-ingestion ground
    // truth (f64 bit patterns, not approximate equality).
    let store = DurableDb::<RecordMeta>::open(&store_dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), ids.len() + 1);
    let shared = store.shared();
    for (id, (q, fv)) in ids.iter().zip(&expected) {
        shared.with_read(|db| {
            let entry = db.get(*id).expect("recovered entry present");
            assert_eq!(entry.vector.len(), fv.len());
            for (a, b) in entry.vector.iter().zip(fv) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "vector must survive bit-identically"
                );
            }
            assert_eq!(
                entry.meta,
                RecordMeta {
                    record_id: q.id,
                    class: q.class,
                    participant: q.participant,
                    trial: q.trial,
                }
            );
        });
    }

    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn hot_reload_re_grafts_ingested_motions_onto_the_fresh_model() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let model_path = tmp_path("reload_model.json");
    let store_dir = tmp_path("reload_store");
    std::fs::remove_dir_all(&store_dir).ok();
    model.save_json(&model_path).expect("model saves");
    let baseline = model.db().len();

    let config = ServeConfig::default().with_store_dir(&store_dir);
    let server = Server::start_from_file(&model_path, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let (_, _, durable) = insert_ok(&mut client, &queries[0]);
    assert!(durable);
    let (_, _, _) = insert_ok(&mut client, &queries[1]);

    // Reload swaps in a freshly loaded model; the store must re-graft its
    // two entries onto it, so they stay visible afterwards.
    match client.reload().expect("reload call") {
        Response::Reloaded { .. } => {}
        other => panic!("reload failed: {other:?}"),
    }
    match client.health().expect("health") {
        Response::Health { motions, .. } => assert_eq!(
            motions,
            baseline + 2,
            "reload must not lose ingested motions"
        ),
        other => panic!("expected health, got {other:?}"),
    }
    // And ingestion keeps working against the re-grafted database.
    let (_, motions, _) = insert_ok(&mut client, &queries[2]);
    assert_eq!(motions, baseline + 3);

    client.shutdown().expect("shutdown ack");
    server.wait();
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn persist_and_compact_through_the_wire_survive_restart() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let model_path = tmp_path("compact_model.json");
    let store_dir = tmp_path("compact_store");
    std::fs::remove_dir_all(&store_dir).ok();
    model.save_json(&model_path).expect("model saves");
    let baseline = model.db().len();

    let config = ServeConfig::default().with_store_dir(&store_dir);
    let server = Server::start_from_file(&model_path, config.clone()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    for q in queries.iter().take(2) {
        insert_ok(&mut client, q);
    }
    match client.persist().expect("persist call") {
        Response::Persisted {
            generation,
            entries,
            bytes,
        } => {
            assert_eq!(generation, 1);
            assert_eq!(entries, 2);
            assert!(bytes > 0);
        }
        other => panic!("expected persisted, got {other:?}"),
    }
    insert_ok(&mut client, &queries[2]);
    match client.compact().expect("compact call") {
        Response::Compacted {
            generation,
            entries,
            files_removed,
            ..
        } => {
            assert_eq!(generation, 2);
            assert_eq!(entries, 3);
            assert!(files_removed > 0, "compaction must reclaim old files");
        }
        other => panic!("expected compacted, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    server.wait();

    // Restart after snapshot + compaction: everything is still there.
    let server = Server::start_from_file(&model_path, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.health().expect("health") {
        Response::Health { motions, .. } => assert_eq!(motions, baseline + 3),
        other => panic!("expected health, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    server.wait();
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}

#[test]
fn server_without_a_store_refuses_persist_and_answers_volatile_inserts() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let (_, _, durable) = insert_ok(&mut client, &queries[0]);
    assert!(!durable, "no store ⇒ the ack must admit volatility");
    match client.persist().expect("persist call") {
        Response::Error { message } => assert!(
            message.contains("store"),
            "refusal must name the missing store, got: {message}"
        ),
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    server.wait();
}

#[test]
fn refused_reload_keeps_the_old_generation_serving() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries) = trained_model();
    let model_path = tmp_path("refused_reload_model.json");
    let store_dir = tmp_path("refused_reload_store");
    std::fs::remove_dir_all(&store_dir).ok();
    model.save_json(&model_path).expect("model saves");
    let baseline = model.db().len();

    let config = ServeConfig::default().with_store_dir(&store_dir);
    let server = Server::start_from_file(&model_path, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let (_, _, durable) = insert_ok(&mut client, &queries[0]);
    assert!(durable);
    insert_ok(&mut client, &queries[1]);
    let before = serde_json::to_string(&client.classify(&queries[2]).expect("classify")).unwrap();

    // Overwrite the model file with one of a different feature
    // dimensionality: loading it works, but the durable store cannot be
    // re-grafted onto it, so the reload must be refused.
    let ds = hand_dataset();
    let (train, _) = stratified_split(&ds.records, 1);
    let narrow = MotionClassifier::train(
        &train,
        ds.spec.limb,
        &PipelineConfig::default().with_clusters(6),
    )
    .expect("narrow model trains");
    narrow.save_json(&model_path).expect("narrow model saves");

    match client.reload().expect("reload call") {
        Response::Error { message } => assert!(
            message.contains("reload refused"),
            "refusal must be explicit, got: {message}"
        ),
        other => panic!("mismatched reload must be refused, got {other:?}"),
    }

    // The old generation keeps serving: same motion count, bit-identical
    // answers, and ingestion still works against the old model.
    match client.health().expect("health") {
        Response::Health { motions, .. } => assert_eq!(
            motions,
            baseline + 2,
            "refused reload must not lose motions"
        ),
        other => panic!("expected health, got {other:?}"),
    }
    let after = serde_json::to_string(&client.classify(&queries[2]).expect("classify")).unwrap();
    assert_eq!(
        after, before,
        "answers must be unchanged after a refused reload"
    );
    let (_, motions, durable) = insert_ok(&mut client, &queries[3]);
    assert!(durable, "the store must still be attached");
    assert_eq!(motions, baseline + 3);

    client.shutdown().expect("shutdown ack");
    server.wait();
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}
