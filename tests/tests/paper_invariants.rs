//! Integration tests for the qualitative claims behind the paper's
//! figures: synchronized modality activity (Fig. 2), same-class cluster
//! overlap (Fig. 3), and final-vector separability (Fig. 4).

use kinemyo::biosim::{Limb, MotionClass, MotionRecord};
use kinemyo::{MotionClassifier, PipelineConfig};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_linalg::vector::euclidean;
use std::collections::BTreeSet;

fn trained_model() -> (&'static [MotionRecord], MotionClassifier) {
    let ds = hand_dataset();
    let refs: Vec<&MotionRecord> = ds.records.iter().collect();
    let config = PipelineConfig::default()
        .with_clusters(6)
        .with_window_ms(100.0);
    let model = MotionClassifier::train(&refs, Limb::RightHand, &config).unwrap();
    (&ds.records, model)
}

/// Fig. 2: the biceps envelope peak and the wrist vertical excursion peak
/// of a raise-arm trial must be synchronized to within a second.
#[test]
fn fig2_emg_and_motion_are_synchronized() {
    let ds = hand_dataset();
    for r in ds
        .records
        .iter()
        .filter(|r| r.class == MotionClass::RaiseArm)
    {
        let biceps: Vec<f64> = (0..r.frames()).map(|f| r.emg[(f, 0)]).collect();
        let wrist_y: Vec<f64> = (0..r.frames()).map(|f| r.mocap[(f, 7)]).collect();
        // Biceps fires while the arm rises: the peak EMG frame must come
        // before or near the first frame of peak height.
        let peak_y = wrist_y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let first_high = wrist_y
            .iter()
            .position(|&y| y > peak_y - 50.0)
            .expect("arm rises");
        let peak_emg = biceps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let gap_s = (peak_emg as f64 - first_high as f64).abs() / 120.0;
        assert!(
            gap_s < 1.5,
            "record {}: biceps peak at {peak_emg}, arm-high at {first_high} ({gap_s:.2} s apart)",
            r.id
        );
    }
}

/// Fig. 3: two trials of the same class visit more of the same clusters
/// than trials of different classes.
#[test]
fn fig3_same_class_clusters_overlap_more() {
    let (records, model) = trained_model();
    let visited = |r: &MotionRecord| -> BTreeSet<usize> {
        model
            .window_assignments(r)
            .unwrap()
            .iter()
            .map(|a| a.cluster)
            .collect()
    };
    let jaccard = |a: &BTreeSet<usize>, b: &BTreeSet<usize>| -> f64 {
        a.intersection(b).count() as f64 / a.union(b).count().max(1) as f64
    };
    let raise: Vec<_> = records
        .iter()
        .filter(|r| r.class == MotionClass::RaiseArm)
        .take(2)
        .map(visited)
        .collect();
    let throw: Vec<_> = records
        .iter()
        .filter(|r| r.class == MotionClass::ThrowBall)
        .take(2)
        .map(visited)
        .collect();
    let same = (jaccard(&raise[0], &raise[1]) + jaccard(&throw[0], &throw[1])) / 2.0;
    let cross = (jaccard(&raise[0], &throw[0]) + jaccard(&raise[1], &throw[1])) / 2.0;
    assert!(
        same > cross,
        "same-class Jaccard {same:.3} must exceed cross-class {cross:.3}"
    );
}

/// Fig. 4: final feature vectors of same-class motions are closer than
/// those of different classes (averaged over all pairs).
#[test]
fn fig4_final_vectors_separate_classes() {
    let (records, model) = trained_model();
    let vectors: Vec<(MotionClass, Vec<f64>)> = records
        .iter()
        .map(|r| (r.class, model.query_feature_vector(r).unwrap().into_vec()))
        .collect();
    let mut same = (0.0, 0usize);
    let mut cross = (0.0, 0usize);
    for i in 0..vectors.len() {
        for j in (i + 1)..vectors.len() {
            let d = euclidean(&vectors[i].1, &vectors[j].1);
            if vectors[i].0 == vectors[j].0 {
                same.0 += d;
                same.1 += 1;
            } else {
                cross.0 += d;
                cross.1 += 1;
            }
        }
    }
    let mean_same = same.0 / same.1 as f64;
    let mean_cross = cross.0 / cross.1 as f64;
    assert!(
        mean_cross > 1.3 * mean_same,
        "cross-class distance {mean_cross:.3} must clearly exceed same-class {mean_same:.3}"
    );
}

/// Sec. 1: the EMG of two same-class trials differs strongly even though
/// the motions are semantically identical (the non-stationarity premise).
#[test]
fn emg_nonstationarity_premise_holds() {
    let ds = hand_dataset();
    let raises: Vec<&MotionRecord> = ds
        .records
        .iter()
        .filter(|r| r.class == MotionClass::RaiseArm && r.participant == 0)
        .collect();
    assert!(raises.len() >= 2);
    let (a, b) = (raises[0], raises[1]);
    let n = a.frames().min(b.frames());
    let mut diff = 0.0;
    let mut scale = 0.0;
    for f in 0..n {
        diff += (a.emg[(f, 0)] - b.emg[(f, 0)]).abs();
        scale += a.emg[(f, 0)].abs() + b.emg[(f, 0)].abs();
    }
    let rel = diff / (scale / 2.0);
    assert!(
        rel > 0.3,
        "same-class EMG trials should differ substantially (relative diff {rel:.3})"
    );
}

/// The local transform makes classification invariant to where in the lab
/// the motion was performed (Sec. 3.2's purpose).
#[test]
fn classification_is_translation_invariant() {
    let (records, model) = trained_model();
    let r = &records[10];
    let mut moved = r.clone();
    // Shift the whole capture 3 m in x and 2 m in z.
    for f in 0..moved.mocap.rows() {
        let row = moved.mocap.row_mut(f);
        for j in 0..row.len() / 3 {
            row[j * 3] += 3000.0;
            row[j * 3 + 2] += 2000.0;
        }
    }
    for p in &mut moved.pelvis {
        p.x += 3000.0;
        p.z += 2000.0;
    }
    let original = model.query_feature_vector(r).unwrap();
    let shifted = model.query_feature_vector(&moved).unwrap();
    for (a, b) in original.as_slice().iter().zip(shifted.as_slice()) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}
