//! End-to-end tests for streaming sessions over real loopback sockets:
//! rolling classifications pushed over the wire must be bit-identical to
//! the offline engine (and to the guard layer's clean path), idle
//! sessions must be evicted, capacity must shed with a typed response,
//! concurrent sessions must survive hot reloads without losing a single
//! rolling result, drift-triggered re-training must be deterministic,
//! and the router must pin sessions to shards.
//!
//! Every test speaks the actual wire protocol (JSON over TCP), so they
//! are skipped under the offline stub build where `serde_json` cannot
//! move data at runtime (see `.claude/skills/verify`).

use kinemyo::biosim::MotionRecord;
use kinemyo::{
    stratified_split, GuardConfig, GuardedClassifier, MotionClassifier, PipelineConfig, SessionCore,
};
use kinemyo_cluster::{Router, RouterConfig, RouterServer};
use kinemyo_integration_tests::hand_dataset;
use kinemyo_serve::{
    CallOutcome, DriftConfig, ReloadPolicy, Request, Response, RetrainSource, ServeClient,
    ServeConfig, Server, SessionConfig, WireFrame,
};
use std::time::Duration;

/// True when the real serde_json backend is linked in.
fn json_available() -> bool {
    serde_json::to_string(&0u32).is_ok()
}

/// Small trained model + held-out queries from the shared hand fixture.
fn trained_model() -> (MotionClassifier, Vec<MotionRecord>, PipelineConfig) {
    let ds = hand_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(8);
    let model = MotionClassifier::train(&train, ds.spec.limb, &config).expect("training succeeds");
    let queries = queries.into_iter().cloned().collect();
    (model, queries, config)
}

/// The training split as owned records (for re-train sources and for
/// re-training bit-identical models).
fn train_records() -> Vec<MotionRecord> {
    let ds = hand_dataset();
    let (train, _) = stratified_split(&ds.records, 1);
    train.into_iter().cloned().collect()
}

fn frames_of(r: &MotionRecord) -> Vec<WireFrame> {
    (0..r.frames())
        .map(|f| WireFrame {
            mocap: r.mocap.row(f).to_vec(),
            pelvis: [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z],
            emg: r.emg.row(f).to_vec(),
            t_ms: None,
        })
        .collect()
}

/// Pushes frames and unwraps the `session_windows` reply.
fn push_ok(
    client: &mut ServeClient,
    session: u64,
    frames: &[WireFrame],
) -> (
    u64,
    Vec<kinemyo_serve::RollingWindow>,
    Vec<kinemyo_serve::RejectedFrame>,
    Option<kinemyo_serve::DriftReport>,
) {
    match client
        .session_push(session, frames)
        .expect("push transports")
    {
        Response::SessionWindows {
            generation,
            windows,
            rejected,
            drift,
            ..
        } => (generation, windows, rejected, drift),
        other => panic!("expected session_windows, got {other:?}"),
    }
}

#[test]
fn streamed_windows_are_bit_identical_to_the_offline_engine() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries, config) = trained_model();
    let query = &queries[0];

    // Offline ground truth 1: the session engine itself, frame by frame.
    let mut offline = SessionCore::for_model(&model);
    let mut expected = Vec::new();
    for f in 0..query.frames() {
        let pelvis = [query.pelvis[f].x, query.pelvis[f].y, query.pelvis[f].z];
        if let Some(outcome) = offline
            .push_frame(&model, query.mocap.row(f), pelvis, query.emg.row(f))
            .expect("clean frame")
        {
            expected.push(outcome);
        }
    }
    let offline_predicted = offline
        .classify(&model, config.knn_k)
        .expect("classify")
        .map(|(class, _)| class);

    // Offline ground truth 2: the guard layer's clean path (the
    // `evaluate_guarded` per-record pipeline). Training is deterministic,
    // so this guarded model's primary is bit-identical to `model`.
    let train = train_records();
    let refs: Vec<&MotionRecord> = train.iter().collect();
    let guard_cfg = GuardConfig {
        fallback: false,
        ..GuardConfig::default()
    };
    let guarded = GuardedClassifier::train(&refs, hand_dataset().spec.limb, &config, guard_cfg)
        .expect("guarded training succeeds");
    let guarded_predicted = guarded.classify_record(query).expect("guard classifies");

    // Now the same frames over the wire, in several pushes.
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("session opens");
    let frames = frames_of(query);
    let mut windows = Vec::new();
    for chunk in frames.chunks(48) {
        let (_, w, rejected, drift) = push_ok(&mut client, session, chunk);
        assert!(rejected.is_empty(), "clean frames must not be rejected");
        assert!(drift.is_none(), "steady stream must not trigger drift");
        windows.extend(w);
    }
    assert_eq!(
        windows.len(),
        expected.len(),
        "wire must complete exactly the offline window count"
    );
    for (i, (wire, offline)) in windows.iter().zip(&expected).enumerate() {
        assert_eq!(wire.window, i);
        assert_eq!(wire.cluster, offline.assignment.cluster, "window {i}");
        assert_eq!(
            wire.membership.to_bits(),
            offline.assignment.membership.to_bits(),
            "window {i} membership must be bit-identical across the socket"
        );
        assert_eq!(
            wire.margin.to_bits(),
            offline.margin.to_bits(),
            "window {i} margin must be bit-identical across the socket"
        );
    }

    // The rolling verdict agrees with both offline paths.
    let verdict = match client.session_result(session).expect("result") {
        Response::SessionResult { verdict } => verdict,
        other => panic!("expected session_result, got {other:?}"),
    };
    assert_eq!(verdict.predicted, offline_predicted);
    assert_eq!(verdict.predicted, Some(guarded_predicted.predicted));
    match client.session_close(session).expect("close") {
        Response::SessionClosed { summary } => {
            assert_eq!(summary.frames, frames.len() as u64);
            assert_eq!(summary.rejected_frames, 0);
        }
        other => panic!("expected session_closed, got {other:?}"),
    }
}

#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries, _) = trained_model();
    let config = ServeConfig::default()
        .with_session_config(SessionConfig::default().with_idle_timeout(Duration::from_millis(50)));
    let server = Server::start(model, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("session opens");

    // The acceptor sweeps idle sessions roughly every 500 ms; wait out
    // one sweep past the 50 ms timeout.
    std::thread::sleep(Duration::from_millis(1200));
    match client
        .session_push(session, &frames_of(&queries[0])[..4])
        .expect("push transports")
    {
        Response::SessionUnknown { session: s } => assert_eq!(s, session),
        other => panic!("expected session_unknown after eviction, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions.evicted, 1);
    assert_eq!(stats.sessions.live, 0);
    assert_eq!(stats.sessions.unknown, 1);
}

#[test]
fn session_capacity_sheds_with_a_typed_response() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, _, _) = trained_model();
    let config =
        ServeConfig::default().with_session_config(SessionConfig::default().with_max_sessions(2));
    let server = Server::start(model, config).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let a = client.session_open(ReloadPolicy::Rebind, None).unwrap();
    let b = client.session_open(ReloadPolicy::Rebind, None).unwrap();
    assert_ne!(a, b);
    match client.session_open(ReloadPolicy::Rebind, None) {
        Err(CallOutcome::Rejected(resp)) => match *resp {
            Response::SessionOverloaded { capacity } => assert_eq!(capacity, 2),
            other => panic!("expected session_overloaded, got {other:?}"),
        },
        other => panic!("expected typed shedding, got {other:?}"),
    }
    // Closing one frees a slot for the next open.
    client.session_close(a).expect("close");
    client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("slot freed by close");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions.shed, 1);
    assert_eq!(stats.sessions.live, 2);
}

#[test]
fn concurrent_sessions_survive_hot_reload_with_zero_lost_windows() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries, _) = trained_model();
    let window_len = model.window().len();
    let path = std::env::temp_dir().join(format!(
        "kinemyo_sessions_reload_{}.json",
        std::process::id()
    ));
    model.save_json(&path).expect("model saves");
    let server = Server::start_from_file(&path, ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let pinned = client
        .session_open(ReloadPolicy::FinishOld, None)
        .expect("pinned session opens");
    let follower = client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("follower session opens");

    let frames = frames_of(&queries[1]);
    let half = frames.len() / 2;
    let mut pinned_windows = 0usize;
    let mut follower_windows = 0usize;

    // First half of the stream on generation 0.
    let (g, w, _, _) = push_ok(&mut client, pinned, &frames[..half]);
    assert_eq!(g, 0);
    pinned_windows += w.len();
    let (g, w, _, _) = push_ok(&mut client, follower, &frames[..half]);
    assert_eq!(g, 0);
    follower_windows += w.len();

    // Hot reload mid-session (from a second connection, like an operator
    // would), then finish both streams.
    let mut control = ServeClient::connect(addr).unwrap();
    control.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match control.reload().expect("reload") {
        Response::Reloaded {
            model_generation, ..
        } => assert_eq!(model_generation, 1),
        other => panic!("reload failed: {other:?}"),
    }

    let (g, w, _, _) = push_ok(&mut client, pinned, &frames[half..]);
    assert_eq!(g, 0, "finish_old must stay pinned to its open generation");
    pinned_windows += w.len();
    let (g, w, _, _) = push_ok(&mut client, follower, &frames[half..]);
    assert_eq!(g, 1, "rebind must observe the reload generation");
    follower_windows += w.len();

    // Zero lost rolling results on either side of the reload.
    let expected = frames.len() / window_len;
    assert_eq!(pinned_windows, expected);
    assert_eq!(follower_windows, expected);
    for session in [pinned, follower] {
        match client.session_close(session).expect("close") {
            Response::SessionClosed { summary } => {
                assert_eq!(summary.frames, frames.len() as u64);
                assert_eq!(summary.rejected_frames, 0);
            }
            other => panic!("expected session_closed, got {other:?}"),
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The drift stimulus: a confident prefix (the same record twice) and a
/// deterministically scrambled tail that collapses membership margins.
fn drift_stimulus(record: &MotionRecord) -> (Vec<WireFrame>, Vec<WireFrame>) {
    let prefix = frames_of(record);
    let mut tail = frames_of(record);
    for (i, f) in tail.iter_mut().enumerate() {
        for (j, v) in f.emg.iter_mut().enumerate() {
            *v = ((i * 31 + j * 7) % 13) as f64 * 40.0;
        }
        for (j, v) in f.mocap.iter_mut().enumerate() {
            *v += (((i * 17 + j * 3) % 11) as f64 - 5.0) * 60.0;
        }
    }
    (prefix, tail)
}

fn drift_serve_config(train: &[MotionRecord], config: &PipelineConfig) -> ServeConfig {
    let drift = DriftConfig {
        enabled: true,
        baseline: 2,
        recent: 2,
        ratio: 0.9,
        min_windows: 4,
        cooldown: 4,
    };
    ServeConfig::default()
        .with_session_config(
            SessionConfig::default()
                .with_drift(drift)
                .with_snapshot_frames(256),
        )
        .with_session_retrain(RetrainSource {
            records: train.to_vec(),
            limb: hand_dataset().spec.limb,
            config: config.clone(),
        })
}

#[test]
fn drift_retrain_over_the_wire_is_deterministic() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (_, queries, config) = trained_model();
    let train = train_records();
    let refs: Vec<&MotionRecord> = train.iter().collect();
    let probe = &queries[2];

    // The whole scenario twice, against two independently started
    // daemons serving independently trained (deterministic ⇒ identical)
    // models.
    let run = || {
        let model =
            MotionClassifier::train(&refs, hand_dataset().spec.limb, &config).expect("train");
        let server = Server::start(model, drift_serve_config(&train, &config)).unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let session = client
            .session_open(ReloadPolicy::Rebind, None)
            .expect("session opens");
        let (prefix, tail) = drift_stimulus(&queries[0]);
        let mut reports = Vec::new();
        let mut pushed = 0usize;
        for _ in 0..2 {
            let (_, _, rejected, drift) = push_ok(&mut client, session, &prefix);
            assert!(rejected.is_empty());
            reports.extend(drift);
            pushed += prefix.len();
        }
        for _ in 0..4 {
            let (_, _, rejected, drift) = push_ok(&mut client, session, &tail);
            assert!(rejected.is_empty());
            reports.extend(drift);
            pushed += tail.len();
        }
        // No in-flight frame of the triggering session may be dropped by
        // the re-train.
        let summary = match client.session_close(session).expect("close") {
            Response::SessionClosed { summary } => summary,
            other => panic!("expected session_closed, got {other:?}"),
        };
        assert_eq!(summary.frames, pushed as u64);
        // The post-reload model answers a fixed probe; its serialized
        // classification stands in for the model bytes on the wire.
        let probe_answer =
            serde_json::to_string(&client.classify(probe).expect("probe classifies")).unwrap();
        let stats = client.stats().expect("stats");
        (reports, probe_answer, stats.sessions)
    };

    let (reports_a, probe_a, sessions_a) = run();
    let (reports_b, probe_b, sessions_b) = run();
    assert!(
        !reports_a.is_empty(),
        "the scrambled tail must trigger the drift detector"
    );
    assert_eq!(
        reports_a, reports_b,
        "same seed + same replay must trigger at the same window"
    );
    assert_eq!(sessions_a.drift_triggers, sessions_b.drift_triggers);
    assert_eq!(sessions_a.retrains, sessions_b.retrains);
    assert!(sessions_a.retrains >= 1, "the trigger must hot re-train");
    assert!(
        reports_a.iter().any(|r| r.retrained && r.generation > 0),
        "a successful re-train must bump the generation: {reports_a:?}"
    );
    assert_eq!(
        probe_a, probe_b,
        "post-retrain models must answer byte-identically"
    );
}

#[test]
fn hot_retrain_drops_no_frames_of_other_inflight_sessions() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (_, queries, config) = trained_model();
    let train = train_records();
    let refs: Vec<&MotionRecord> = train.iter().collect();
    let model = MotionClassifier::train(&refs, hand_dataset().spec.limb, &config).expect("train");
    let window_len = model.window().len();
    let server = Server::start(model, drift_serve_config(&train, &config)).unwrap();
    let addr = server.local_addr();

    // Session B streams clean frames on its own connection while session
    // A triggers the drift re-train.
    let bystander = frames_of(&queries[1]);
    let rounds = 3usize;
    let worker = {
        let bystander = bystander.clone();
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            client.set_timeout(Some(Duration::from_secs(60))).unwrap();
            let session = client
                .session_open(ReloadPolicy::Rebind, None)
                .expect("bystander opens");
            let mut windows = 0usize;
            for _ in 0..rounds {
                for chunk in bystander.chunks(32) {
                    let (_, w, rejected, _) = push_ok(&mut client, session, chunk);
                    assert!(rejected.is_empty(), "clean frames must not be rejected");
                    windows += w.len();
                }
            }
            let summary = match client.session_close(session).expect("close") {
                Response::SessionClosed { summary } => summary,
                other => panic!("expected session_closed, got {other:?}"),
            };
            (windows, summary)
        })
    };

    let mut client = ServeClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
    let trigger = client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("trigger opens");
    let (prefix, tail) = drift_stimulus(&queries[0]);
    let mut retrained = false;
    for _ in 0..2 {
        push_ok(&mut client, trigger, &prefix);
    }
    for _ in 0..4 {
        let (_, _, _, drift) = push_ok(&mut client, trigger, &tail);
        retrained |= drift.is_some_and(|d| d.retrained);
    }
    let (windows, summary) = worker.join().unwrap();
    assert!(retrained, "session A must have triggered a hot re-train");
    // Every frame session B pushed was accepted and every completed
    // window came back — nothing was dropped across the model swap.
    let pushed = (bystander.len() * rounds) as u64;
    assert_eq!(summary.frames, pushed);
    assert_eq!(summary.rejected_frames, 0);
    assert_eq!(windows, bystander.len() * rounds / window_len);
}

#[test]
fn malformed_mid_session_frames_keep_the_session_alive() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model, queries, _) = trained_model();
    let server = Server::start(model, ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = client
        .session_open(ReloadPolicy::Rebind, None)
        .expect("session opens");

    let mut frames = frames_of(&queries[0]);
    frames[2].mocap[0] = f64::NAN;
    frames[5].emg.pop();
    let (_, _, rejected, _) = push_ok(&mut client, session, &frames[..8]);
    let rejected_idx: Vec<usize> = rejected.iter().map(|r| r.index).collect();
    assert_eq!(rejected_idx, vec![2, 5]);
    for r in &rejected {
        assert!(!r.reason.is_empty(), "rejections must carry a reason");
    }

    // The session keeps streaming on the same connection.
    let clean = frames_of(&queries[0]);
    let (_, windows, rejected, _) = push_ok(&mut client, session, &clean);
    assert!(rejected.is_empty());
    assert!(!windows.is_empty(), "the session must still classify");
    client.session_close(session).expect("close succeeds");
}

#[test]
fn router_pins_sessions_to_shards_and_rewrites_ids() {
    if !json_available() {
        eprintln!("skipping: serde_json stub build");
        return;
    }
    let (model_a, queries, config) = trained_model();
    let train = train_records();
    let refs: Vec<&MotionRecord> = train.iter().collect();
    let model_b = MotionClassifier::train(&refs, hand_dataset().spec.limb, &config).expect("train");

    // Two single-replica shards, then a router in front.
    let shard_a = Server::start(model_a, ServeConfig::default()).unwrap();
    let shard_b = Server::start(model_b, ServeConfig::default()).unwrap();
    let topo = vec![
        vec![shard_a.local_addr().to_string()],
        vec![shard_b.local_addr().to_string()],
    ];
    let router = Router::new(RouterConfig::default().with_shards(topo)).unwrap();
    let front = RouterServer::start(router, "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(front.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Round-robin affinity lands the two sessions on different shards;
    // both backends number sessions from 1, so distinct router ids prove
    // the id rewrite.
    let s1 = client.session_open(ReloadPolicy::Rebind, None).unwrap();
    let s2 = client.session_open(ReloadPolicy::Rebind, None).unwrap();
    assert_ne!(s1, s2, "router ids must be distinct across shards");

    let frames = frames_of(&queries[0]);
    for session in [s1, s2] {
        let (_, windows, rejected, _) = push_ok(&mut client, session, &frames);
        assert!(rejected.is_empty());
        assert!(!windows.is_empty(), "session {session} must classify");
    }

    // The pinned-session count rides on ClusterHealth.
    match client
        .call(&Request::Classify {
            record: queries[0].clone(),
        })
        .expect("classify via router")
    {
        Response::Result { cluster, .. } => {
            let health = cluster.expect("router attaches cluster health");
            assert_eq!(health.sessions_routed, 2);
        }
        other => panic!("expected merged result, got {other:?}"),
    }

    for session in [s1, s2] {
        match client.session_close(session).expect("close") {
            Response::SessionClosed { summary } => {
                assert_eq!(summary.session, session, "ids are rewritten on close");
                assert_eq!(summary.frames, frames.len() as u64);
            }
            other => panic!("expected session_closed, got {other:?}"),
        }
    }
    match client
        .session_push(s1, &frames[..1])
        .expect("push transports")
    {
        Response::SessionUnknown { session } => assert_eq!(session, s1),
        other => panic!("closed session must be unknown, got {other:?}"),
    }
}
