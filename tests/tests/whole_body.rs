//! Integration tests for the whole-body extension (the paper's Sec. 5
//! flexibility claim) and the CLI-facing persistence formats.

use kinemyo::biosim::{Limb, MotionClass};
use kinemyo::{evaluate, stratified_split, MotionClassifier, PipelineConfig};
use kinemyo_integration_tests::whole_body_dataset;

#[test]
fn whole_body_records_have_combined_shape() {
    let ds = whole_body_dataset();
    assert_eq!(ds.classes().len(), 12);
    for r in &ds.records {
        assert_eq!(r.mocap.cols(), 21, "7 segments x 3");
        assert_eq!(r.emg.cols(), 6, "all 6 EMG channels");
    }
}

#[test]
fn arm_motions_keep_leg_channels_quiet_and_vice_versa() {
    let ds = whole_body_dataset();
    let mean_channel = |class: MotionClass, ch: usize| -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for r in ds.records.iter().filter(|r| r.class == class) {
            for f in 0..r.frames() {
                acc += r.emg[(f, ch)];
            }
            n += r.frames();
        }
        acc / n as f64
    };
    // Channel 0 = biceps, channel 4 = front shin in whole-body order.
    let biceps_arm = mean_channel(MotionClass::DrinkCup, 0);
    let biceps_leg = mean_channel(MotionClass::ToeTap, 0);
    let shin_arm = mean_channel(MotionClass::DrinkCup, 4);
    let shin_leg = mean_channel(MotionClass::ToeTap, 4);
    // The rectified envelope has a noise floor (~tens of µV), so the quiet
    // channel is not zero — require a clear factor above it.
    assert!(
        biceps_arm > 1.5 * biceps_leg,
        "biceps should fire for drinking, not toe taps ({biceps_arm} vs {biceps_leg})"
    );
    assert!(
        shin_leg > 3.0 * shin_arm,
        "front shin should fire for toe taps, not drinking ({shin_leg} vs {shin_arm})"
    );
}

#[test]
fn whole_body_classification_succeeds_on_12_classes() {
    let ds = whole_body_dataset();
    let (train, queries) = stratified_split(&ds.records, 1);
    let config = PipelineConfig::default().with_clusters(12);
    let out = evaluate(&train, &queries, Limb::WholeBody, &config).expect("evaluation runs");
    assert_eq!(out.queries, 12);
    // 12-way chance is ~92% misclassification; gate well below that.
    assert!(
        out.misclassification_pct <= 50.0,
        "whole-body misclassification {:.1}% too high",
        out.misclassification_pct
    );
}

#[test]
fn whole_body_model_persists() {
    let ds = whole_body_dataset();
    let refs: Vec<_> = ds.records.iter().collect();
    let config = PipelineConfig::default().with_clusters(10);
    let model = MotionClassifier::train(&refs, Limb::WholeBody, &config).unwrap();
    let path = std::env::temp_dir().join("kinemyo_whole_body_model.json");
    model.save_json(&path).unwrap();
    let loaded = MotionClassifier::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.limb(), Limb::WholeBody);
    let r = &ds.records[0];
    assert_eq!(
        model.classify_record(r).unwrap().predicted,
        loaded.classify_record(r).unwrap().predicted
    );
}

#[test]
fn binary_and_json_dataset_formats_agree() {
    let ds = whole_body_dataset();
    let dir = std::env::temp_dir();
    let jpath = dir.join("kinemyo_wb.json");
    let bpath = dir.join("kinemyo_wb.kmyo");
    ds.save_json(&jpath).unwrap();
    ds.save_binary(&bpath).unwrap();
    let from_json = kinemyo::biosim::Dataset::load_json(&jpath).unwrap();
    let from_bin = kinemyo::biosim::Dataset::load_binary(&bpath).unwrap();
    let jbytes = std::fs::metadata(&jpath).unwrap().len();
    let bbytes = std::fs::metadata(&bpath).unwrap().len();
    std::fs::remove_file(&jpath).ok();
    std::fs::remove_file(&bpath).ok();
    assert_eq!(from_json.len(), from_bin.len());
    for (a, b) in from_json.records.iter().zip(&from_bin.records) {
        assert!(a.mocap.approx_eq(&b.mocap, 0.0));
        assert!(a.emg.approx_eq(&b.emg, 0.0));
    }
    assert!(
        bbytes * 2 < jbytes,
        "binary ({bbytes}) should be < half of JSON ({jbytes})"
    );
}
